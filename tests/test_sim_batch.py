"""Tests for repro.sim.batch (event-driven campaigns)."""

import numpy as np
import pytest

from repro.cache.lru import LRUCache
from repro.core.notation import SystemParameters
from repro.exceptions import SimulationError
from repro.sim.batch import run_event_campaign
from repro.workload.adversarial import AdversarialDistribution
from repro.workload.distributions import UniformDistribution


def _params():
    return SystemParameters(n=10, m=200, c=10, d=3, rate=2000.0)


class TestRunEventCampaign:
    def test_aggregation_shapes(self):
        campaign = run_event_campaign(
            _params(), UniformDistribution(200), trials=4, n_queries=4000, seed=1
        )
        assert campaign.trials == 4
        assert campaign.load_report.trials == 4
        assert campaign.load_report.n_nodes == 10
        assert 0.0 <= campaign.mean_hit_rate <= 1.0
        assert campaign.worst_drop_rate >= campaign.mean_drop_rate - 1e-12

    def test_trials_are_independent(self):
        campaign = run_event_campaign(
            _params(), UniformDistribution(200), trials=4, n_queries=4000, seed=1
        )
        gains = campaign.load_report.normalized_max_per_trial
        assert len(set(np.round(gains, 6))) > 1

    def test_reproducible(self):
        a = run_event_campaign(
            _params(), UniformDistribution(200), trials=3, n_queries=3000, seed=5
        )
        b = run_event_campaign(
            _params(), UniformDistribution(200), trials=3, n_queries=3000, seed=5
        )
        assert (
            a.load_report.normalized_max_per_trial
            == b.load_report.normalized_max_per_trial
        ).all()

    def test_cache_factory_gives_fresh_cache_per_trial(self):
        caches = []

        def factory():
            cache = LRUCache(10)
            caches.append(cache)
            return cache

        run_event_campaign(
            _params(),
            AdversarialDistribution(200, 50),
            trials=3,
            n_queries=2000,
            seed=2,
            cache_factory=factory,
        )
        assert len(caches) == 3
        assert all(c.stats.accesses == 2000 for c in caches)

    def test_simulator_kwargs_forwarded(self):
        # n >> c so the single uncached key's load (R/11 = n/11 times
        # the even split) far exceeds the tight 1.1x capacity.
        params = SystemParameters(n=40, m=200, c=10, d=3, rate=2000.0)
        campaign = run_event_campaign(
            params,
            AdversarialDistribution(200, 11),
            trials=2,
            n_queries=5000,
            seed=3,
            node_capacity=1.1 * params.even_split,
        )
        assert campaign.worst_drop_rate > 0.1

    def test_describe(self):
        campaign = run_event_campaign(
            _params(), UniformDistribution(200), trials=2, n_queries=2000, seed=1
        )
        text = campaign.describe()
        assert "2 event-driven trials" in text
        assert "drop rate" in text

    def test_comparable_with_analytic_engine(self):
        from repro.sim.analytic import simulate_uniform_attack

        params = _params()
        x = 100
        campaign = run_event_campaign(
            params, AdversarialDistribution(200, x), trials=4, n_queries=20_000, seed=4
        )
        analytic = simulate_uniform_attack(params, x, trials=20, seed=4)
        assert campaign.load_report.mean == pytest.approx(analytic.mean, rel=0.3)

    def test_rejects_zero_trials(self):
        with pytest.raises(SimulationError):
            run_event_campaign(
                _params(), UniformDistribution(200), trials=0, n_queries=100
            )

"""Tests for repro.workload.generator and trace persistence."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workload.adversarial import AdversarialDistribution
from repro.workload.distributions import UniformDistribution
from repro.workload.generator import QueryStream
from repro.workload.trace import load_trace, save_trace


class TestAdversarialDistribution:
    def test_uniform_prefix(self):
        dist = AdversarialDistribution(m=50, x=10)
        probs = dist.probabilities()
        assert np.allclose(probs[:10], 0.1)
        assert probs[10:].sum() == 0.0

    def test_sample_stays_in_prefix(self):
        dist = AdversarialDistribution(m=50, x=10)
        keys = dist.sample(1000, rng=1)
        assert keys.max() < 10

    def test_uncached_keys(self):
        dist = AdversarialDistribution(m=50, x=10)
        assert dist.uncached_keys(c=4).tolist() == [4, 5, 6, 7, 8, 9]
        assert dist.uncached_keys(c=10).size == 0
        assert dist.uncached_keys(c=20).size == 0

    def test_optimal_for_case_one(self, paper_params):
        dist = AdversarialDistribution.optimal_for(paper_params, k=1.2)
        assert dist.x == 201

    def test_optimal_for_case_two(self, paper_params):
        protected = paper_params.with_cache(2000)
        dist = AdversarialDistribution.optimal_for(protected, k=1.2)
        assert dist.x == protected.m

    def test_rejects_bad_x(self):
        from repro.exceptions import DistributionError

        with pytest.raises(DistributionError):
            AdversarialDistribution(m=10, x=11)
        with pytest.raises(DistributionError):
            AdversarialDistribution(m=10, x=0)


class TestQueryStream:
    def _stream(self, n=1000, rate=100.0, rng=7):
        return QueryStream(UniformDistribution(50), n_queries=n, rate=rate, rng=rng)

    def test_counts_sum_to_n(self):
        assert self._stream().counts().sum() == 1000

    def test_rates_sum_to_rate(self):
        assert self._stream().rates().sum() == pytest.approx(100.0)

    def test_keys_length_and_range(self):
        keys = self._stream().keys()
        assert keys.shape == (1000,)
        assert keys.max() < 50

    def test_chunks_cover_stream(self):
        chunks = list(self._stream(n=1000).chunks(chunk_size=300))
        assert [len(c) for c in chunks] == [300, 300, 300, 100]

    def test_iter_yields_ints(self):
        stream = self._stream(n=10)
        keys = list(stream)
        assert len(keys) == 10
        assert all(isinstance(k, int) for k in keys)

    def test_arrival_times_increasing_at_rate(self):
        stream = self._stream(n=5000, rate=100.0)
        times = stream.arrival_times()
        assert (np.diff(times) > 0).all()
        # Mean inter-arrival ~ 1/rate.
        assert times[-1] / 5000 == pytest.approx(0.01, rel=0.2)

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            QueryStream(UniformDistribution(10), n_queries=-1)
        with pytest.raises(ConfigurationError):
            QueryStream(UniformDistribution(10), n_queries=5, rate=0.0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ConfigurationError):
            list(self._stream().chunks(chunk_size=0))


class TestTrace:
    def test_round_trip(self, tmp_path):
        keys = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int64)
        path = tmp_path / "trace.jsonl"
        save_trace(path, keys, rate=123.0, metadata={"source": "unit-test"})
        loaded, header = load_trace(path)
        assert (loaded == keys).all()
        assert header["rate"] == 123.0
        assert header["metadata"]["source"] == "unit-test"

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_trace(path, np.empty(0, dtype=np.int64))
        loaded, header = load_trace(path)
        assert loaded.size == 0
        assert header["n_queries"] == 0

    def test_long_trace_chunked(self, tmp_path):
        keys = np.arange(100_000, dtype=np.int64) % 97
        path = tmp_path / "long.jsonl"
        save_trace(path, keys)
        loaded, _ = load_trace(path)
        assert (loaded == keys).all()

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "keys", "keys": [1, 2]}\n')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text(
            '{"type": "header", "version": 1, "n_queries": 5, "rate": 1.0}\n'
            '{"type": "keys", "keys": [1, 2]}\n'
        )
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"type": "header", "version": 99, "n_queries": 0, "rate": 1.0}\n')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_roundtrip_of_generated_stream(self, tmp_path):
        stream = QueryStream(UniformDistribution(100), n_queries=500, rng=5)
        keys = stream.keys()
        path = tmp_path / "stream.jsonl"
        save_trace(path, keys)
        loaded, _ = load_trace(path)
        assert (loaded == keys).all()

"""`repro perf run|compare|report` end-to-end against a tiny bench dir."""

import json
import sys
import textwrap

import pytest

from repro.cli import main
from repro.perf import harness
from repro.perf.history import append_manifests
from repro.perf.schema import RunManifest


@pytest.fixture
def bench_dir(tmp_path, monkeypatch):
    """A disposable benchmarks/ directory with one fast bench script."""
    directory = tmp_path / "benchmarks"
    directory.mkdir()
    (directory / "bench_tinyperf.py").write_text(textwrap.dedent(
        """
        from repro.perf.harness import register

        def _run():
            return {"config": {"n": 3}, "value": 3}

        def _check(payload):
            assert payload["value"] == 3

        register("tinyperf", run=_run, check=_check,
                 workload=lambda p: {"events": 30}, seed=5)
        """
    ))
    monkeypatch.setenv(harness.BENCH_DIR_ENV, str(directory))
    saved = dict(harness._REGISTRY)
    harness._REGISTRY.clear()
    # Each test gets a fresh import of the script (fresh tmp dir), so the
    # module cache must not satisfy discover() with a stale module object.
    sys.modules.pop("bench_tinyperf", None)
    yield directory
    sys.modules.pop("bench_tinyperf", None)
    harness._REGISTRY.clear()
    harness._REGISTRY.update(saved)


def make_manifest(engine, bench="tinyperf"):
    return RunManifest(
        bench=bench, smoke=True, ok=True, engine_seconds=engine,
        export_seconds=0.01, wall_seconds=engine + 0.01,
    )


class TestPerfRun:
    def test_run_smoke_writes_history_trajectories_artifacts(
        self, bench_dir, capsys
    ):
        assert main(["perf", "run", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "1 bench(es) [smoke]" in out
        history = bench_dir / "results" / "history.jsonl"
        assert history.exists()
        record = json.loads(history.read_text().splitlines()[0])
        assert record["bench"] == "tinyperf"
        assert record["smoke"] is True
        trajectory = json.loads(
            (bench_dir.parent / "BENCH_tinyperf.json").read_text()
        )
        assert trajectory["runs"] == 1
        assert (bench_dir / "results" / "tinyperf_smoke.json").exists()

    def test_run_list(self, bench_dir, capsys):
        assert main(["perf", "run", "--list"]) == 0
        assert "tinyperf" in capsys.readouterr().out

    def test_run_unknown_bench_fails(self, bench_dir, capsys):
        assert main(["perf", "run", "--smoke", "--only", "nope"]) == 1
        assert "no bench named" in capsys.readouterr().err

    def test_run_no_history(self, bench_dir):
        assert main(["perf", "run", "--smoke", "--no-history"]) == 0
        assert not (bench_dir / "results" / "history.jsonl").exists()

    def test_run_then_compare_then_report_end_to_end(self, bench_dir, capsys):
        """The ISSUE 5 acceptance flow, on the disposable bench dir."""
        assert main(["perf", "run", "--smoke"]) == 0
        assert main(["perf", "compare"]) == 0
        out = capsys.readouterr().out
        assert "tinyperf [smoke]: new" in out
        report = bench_dir.parent / "perf_report.html"
        assert main(["perf", "report", "--out", str(report)]) == 0
        assert report.exists()
        assert "tinyperf" in report.read_text(encoding="utf-8")


class TestPerfCompare:
    def test_regression_warn_only_by_default(self, bench_dir, capsys):
        path = bench_dir / "results" / "history.jsonl"
        append_manifests(
            [make_manifest(1.0), make_manifest(1.0), make_manifest(9.0)], path
        )
        assert main(["perf", "compare"]) == 0
        assert "regression" in capsys.readouterr().out

    def test_fail_on_regression(self, bench_dir):
        path = bench_dir / "results" / "history.jsonl"
        append_manifests(
            [make_manifest(1.0), make_manifest(1.0), make_manifest(9.0)], path
        )
        assert main(["perf", "compare", "--fail-on-regression"]) == 1

    def test_thresholds_are_configurable(self, bench_dir):
        path = bench_dir / "results" / "history.jsonl"
        append_manifests(
            [make_manifest(1.0), make_manifest(1.0), make_manifest(9.0)], path
        )
        assert main([
            "perf", "compare", "--fail-on-regression",
            "--tolerance", "10.0", "--noise-floor", "100.0",
        ]) == 0

    def test_baseline_file(self, bench_dir, tmp_path):
        baseline = tmp_path / "baseline.jsonl"
        append_manifests([make_manifest(1.0)], baseline)
        current = bench_dir / "results" / "history.jsonl"
        append_manifests([make_manifest(9.0)], current)
        assert main([
            "perf", "compare", "--baseline", str(baseline),
            "--fail-on-regression",
        ]) == 1

    def test_schema_error_hard_fails_even_warn_only(self, bench_dir, capsys):
        path = bench_dir / "results" / "history.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"schema": 999}\n')
        assert main(["perf", "compare"]) == 2
        assert "schema error" in capsys.readouterr().err


class TestPerfReport:
    def test_report_schema_error_hard_fails(self, bench_dir, capsys):
        path = bench_dir / "results" / "history.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json\n")
        assert main(
            ["perf", "report", "--out", str(bench_dir.parent / "r.html")]
        ) == 2
        assert "schema error" in capsys.readouterr().err

    def test_report_on_empty_history(self, bench_dir, capsys):
        out = bench_dir.parent / "empty.html"
        assert main(["perf", "report", "--out", str(out)]) == 0
        assert "history is empty" in out.read_text(encoding="utf-8")

"""Spec-model tests: round-trip identity and path-reporting validation.

Property tests (hypothesis) pin the serialisation contract — a spec
survives ``to_dict``/``from_dict`` and YAML/JSON text round trips
unchanged — and the failure contract: unknown keys, bad enum values and
type errors raise :class:`ScenarioValidationError` whose ``path``
names the offending field, and schema-version drift hard-fails exactly
like :mod:`repro.perf.schema`.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ScenarioValidationError
from repro.scenario.spec import (
    SPEC_VERSION,
    CampaignSpec,
    ComponentSpec,
    ScenarioSpec,
    dumps_spec,
    loads_spec,
)

try:
    import yaml  # noqa: F401
    HAVE_YAML = True
except ImportError:  # pragma: no cover
    HAVE_YAML = False


# --- strategies ----------------------------------------------------------

#: Printable ASCII, no leading/trailing whitespace: spec names travel
#: through YAML, JSON and filesystem-ish campaign labels.
_names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1,
    max_size=20,
).filter(lambda s: s.strip() == s and s)

_systems = st.fixed_dictionaries({
    "n": st.integers(4, 60),
    "m": st.integers(20, 800),
    "c": st.integers(1, 15),
    "d": st.integers(1, 3),
    "rate": st.floats(1.0, 1e6, allow_nan=False, allow_infinity=False),
})

#: Components with plain-data params; kinds need not resolve in the
#: registry — parsing is registry-independent by design (`check_spec`
#: does the registry pass).
_workloads = st.one_of(
    st.just("uniform"),
    st.fixed_dictionaries({"kind": st.just("zipf"), "s": st.floats(0.5, 2.0, allow_nan=False)}),
    st.fixed_dictionaries({"kind": st.just("adversarial"), "x": st.integers(1, 20)}),
)
_adversaries = st.one_of(
    st.just("uniform"),
    st.fixed_dictionaries({"kind": st.just("subset-flood"), "x": st.integers(1, 20)}),
)
_caches = st.sampled_from(["perfect", "lru", {"kind": "tinylfu", "inner": "lru"}])
_engines = st.sampled_from(["monte-carlo", {"kind": "event-driven", "kernel": "fast"}])


@st.composite
def scenario_dicts(draw):
    data = {
        "scenario": SPEC_VERSION,
        "name": draw(_names),
        "system": draw(_systems),
        "trials": draw(st.integers(1, 10)),
        "queries": draw(st.integers(1, 10_000)),
        "seed": draw(st.integers(-1000, 1000)),
        "workers": draw(st.integers(0, 4)),
    }
    if draw(st.booleans()):
        data["workload"] = draw(_workloads)
    else:
        data["adversary"] = draw(_adversaries)
    if draw(st.booleans()):
        data["cache"] = draw(_caches)
    if draw(st.booleans()):
        data["engine"] = draw(_engines)
    if draw(st.booleans()):
        data["chaos"] = {"kind": "renewal", "failure_rate": 0.1}
    return data


@st.composite
def campaign_dicts(draw):
    base = draw(scenario_dicts())
    base.pop("scenario")
    base.pop("workers", None)
    data = {
        "campaign": SPEC_VERSION,
        "name": draw(_names),
        "base": base,
    }
    sweep = {}
    if draw(st.booleans()):
        sweep["system.d"] = draw(
            st.lists(st.integers(1, 3), min_size=1, max_size=3, unique=True)
        )
    if draw(st.booleans()):
        sweep["cache.kind"] = draw(
            st.lists(
                st.sampled_from(["lru", "fifo", "sieve"]),
                min_size=1, max_size=3, unique=True,
            )
        )
    if sweep:
        data["sweep"] = sweep
    return data


# --- round trips ---------------------------------------------------------

class TestRoundTrip:
    @given(data=scenario_dicts())
    @settings(max_examples=60, deadline=None)
    def test_scenario_dict_round_trip(self, data):
        spec = ScenarioSpec.from_dict(data)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @given(data=scenario_dicts())
    @settings(max_examples=40, deadline=None)
    def test_scenario_json_round_trip(self, data):
        spec = ScenarioSpec.from_dict(data)
        assert loads_spec(dumps_spec(spec, fmt="json"), fmt="json") == spec

    @pytest.mark.skipif(not HAVE_YAML, reason="PyYAML not installed")
    @given(data=scenario_dicts())
    @settings(max_examples=40, deadline=None)
    def test_scenario_yaml_round_trip(self, data):
        spec = ScenarioSpec.from_dict(data)
        assert loads_spec(dumps_spec(spec, fmt="yaml"), fmt="yaml") == spec

    @given(data=campaign_dicts())
    @settings(max_examples=40, deadline=None)
    def test_campaign_round_trip(self, data):
        spec = CampaignSpec.from_dict(data)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert loads_spec(dumps_spec(spec, fmt="json"), fmt="json") == spec

    @given(data=campaign_dicts())
    @settings(max_examples=30, deadline=None)
    def test_expansion_is_deterministic_and_named(self, data):
        spec = CampaignSpec.from_dict(data)
        first, second = spec.expand(), spec.expand()
        assert first == second
        size = 1
        for axis in spec.grid_shape:
            size *= axis
        assert len(first) == size
        assert len({s.name for s in first}) == len(first)
        for scenario in first:
            assert scenario.name.startswith(spec.name)

    def test_bare_string_components_stay_bare(self):
        spec = ScenarioSpec.from_dict({
            "scenario": 1, "name": "s",
            "system": {"n": 4, "m": 20, "c": 1, "d": 2},
            "workload": "uniform",
        })
        data = spec.to_dict()
        assert data["workload"] == "uniform"
        assert data["cache"] == "perfect"


# --- validation errors ---------------------------------------------------

def _base(**over):
    data = {
        "scenario": 1,
        "name": "t",
        "system": {"n": 10, "m": 100, "c": 5, "d": 2, "rate": 100.0},
        "workload": "uniform",
    }
    data.update(over)
    return data


class TestValidationErrors:
    def _expect(self, data, path_fragment):
        with pytest.raises(ScenarioValidationError) as err:
            ScenarioSpec.from_dict(data)
        assert path_fragment in (err.value.path or ""), (
            f"expected path containing {path_fragment!r}, "
            f"got {err.value.path!r}: {err.value}"
        )
        assert path_fragment in str(err.value)
        return err.value

    def test_unknown_top_level_key(self):
        self._expect(_base(bogus=1), "bogus")

    def test_unknown_system_key(self):
        data = _base()
        data["system"]["replicas"] = 3
        self._expect(data, "system.replicas")

    def test_version_drift_hard_fails(self):
        err = self._expect(_base(scenario=2), "scenario")
        assert "schema" in str(err)

    def test_missing_version_key(self):
        data = _base()
        del data["scenario"]
        self._expect(data, "scenario")

    def test_both_workload_and_adversary(self):
        self._expect(_base(adversary="uniform"), "workload")

    def test_neither_workload_nor_adversary(self):
        data = _base()
        del data["workload"]
        self._expect(data, "workload")

    def test_bool_is_not_an_int(self):
        self._expect(_base(trials=True), "trials")

    def test_trials_minimum(self):
        self._expect(_base(trials=0), "trials")

    def test_component_needs_kind(self):
        self._expect(_base(cache={"capacity": 4}), "cache")

    def test_component_params_must_be_plain_data(self):
        self._expect(_base(cache={"kind": "lru", "weird": object()}), "cache.weird")

    def test_null_component_section(self):
        self._expect(_base(chaos=None), "chaos")

    def test_system_constraint_errors_carry_path(self):
        data = _base()
        data["system"]["n"] = -3
        self._expect(data, "system")

    def test_path_attribute_matches_message_prefix(self):
        with pytest.raises(ScenarioValidationError) as err:
            ScenarioSpec.from_dict(_base(queries="many"))
        assert str(err.value).startswith(err.value.path)


class TestCampaignValidation:
    def _campaign(self, **over):
        data = {
            "campaign": 1,
            "name": "camp",
            "base": {
                "system": {"n": 10, "m": 100, "c": 5, "d": 2},
                "workload": "uniform",
            },
        }
        data.update(over)
        return data

    def _expect(self, data, path_fragment):
        with pytest.raises(ScenarioValidationError) as err:
            CampaignSpec.from_dict(data)
        assert path_fragment in (err.value.path or "")
        return err.value

    def test_campaign_version_drift(self):
        self._expect(self._campaign(campaign="1"), "campaign")

    def test_base_inherits_name_and_version(self):
        spec = CampaignSpec.from_dict(self._campaign())
        assert spec.base.name == "camp"

    def test_empty_sweep_values(self):
        self._expect(self._campaign(sweep={"system.d": []}), "sweep.system.d")

    def test_unresolvable_sweep_path(self):
        self._expect(
            self._campaign(sweep={"flux.capacitor": [1]}), "sweep.flux.capacitor"
        )

    def test_sweep_must_not_override_name(self):
        self._expect(self._campaign(sweep={"name": ["a"]}), "sweep.name")

    def test_sweep_value_that_breaks_base_validation(self):
        self._expect(self._campaign(sweep={"trials": [0]}), "trials")

    def test_bare_component_shorthand_expands_for_param_sweeps(self):
        spec = CampaignSpec.from_dict(
            self._campaign(sweep={"workload.s": [1.0, 1.2]})
        )
        kinds = {s.workload.kind for s in spec.expand()}
        assert kinds == {"uniform"}
        assert [s.workload.params["s"] for s in spec.expand()] == [1.0, 1.2]

    def test_loads_spec_dispatches_on_version_key(self):
        scenario = loads_spec(
            '{"scenario": 1, "name": "s", '
            '"system": {"n": 4, "m": 20, "c": 1, "d": 2}, '
            '"workload": "uniform"}',
            fmt="json",
        )
        assert isinstance(scenario, ScenarioSpec)
        with pytest.raises(ScenarioValidationError) as err:
            loads_spec('{"name": "s"}', fmt="json")
        assert "version key" in str(err.value)

    def test_specs_are_frozen(self):
        spec = CampaignSpec.from_dict(self._campaign())
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.name = "other"
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.base.trials = 99

    def test_component_spec_to_data_forms(self):
        assert ComponentSpec("lru").to_data() == "lru"
        assert ComponentSpec("zipf", {"s": 1.1}).to_data() == {
            "kind": "zipf", "s": 1.1,
        }

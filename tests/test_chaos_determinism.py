"""Determinism contracts for fault-injected campaigns.

Chaos must be an execution detail like parallelism, never a semantics
change: the same seed and schedule produce bit-identical results for
every worker count, and repeated runs reproduce each other exactly.
"""

import json

import numpy as np

from repro.chaos import ChaosConfig, RetryPolicy
from repro.core.notation import SystemParameters
from repro.obs import LoadMonitor, MonitorConfig
from repro.sim.analytic import MonteCarloSimulator
from repro.sim.batch import run_event_campaign
from repro.sim.config import SimulationConfig
from repro.workload.adversarial import AdversarialDistribution


def _params():
    return SystemParameters(n=20, m=500, c=10, d=3, rate=2000.0)


def _chaos():
    return ChaosConfig(
        failure_rate=0.5, mttr=0.5,
        retry=RetryPolicy(max_attempts=3, timeout=0.01, backoff=0.005),
    )


def _canon(records):
    """Canonical JSON form for record-list comparison."""
    return json.dumps(records, sort_keys=True, default=float)


def _event_campaign(workers: int):
    params = _params()
    monitor = LoadMonitor(MonitorConfig.from_params(params, x=11, window=0.05))
    campaign = run_event_campaign(
        params,
        AdversarialDistribution(500, 11),
        trials=4,
        n_queries=1500,
        seed=13,
        workers=workers,
        monitor=monitor,
        chaos=_chaos(),
    )
    return campaign, monitor


def _result_fingerprint(result):
    return (
        result.duration,
        result.backend_queries,
        result.frontend_hits,
        result.served.tolist(),
        result.dropped.tolist(),
        result.unavailable,
        result.stale_hits,
        result.retries,
        result.failovers,
        result.crash_lost,
        result.failure_events,
        result.arrival_loads.loads.tolist(),
    )


class TestEventCampaignDeterminism:
    def test_serial_matches_workers_4(self):
        serial, serial_mon = _event_campaign(workers=1)
        parallel, parallel_mon = _event_campaign(workers=4)
        assert serial.trials == parallel.trials == 4
        for a, b in zip(serial.results, parallel.results):
            assert _result_fingerprint(a) == _result_fingerprint(b)
        assert _canon(serial_mon.windows) == _canon(parallel_mon.windows)
        assert _canon(serial_mon.alerts) == _canon(parallel_mon.alerts)
        assert _canon(serial_mon.summaries) == _canon(parallel_mon.summaries)
        # The chaos actually did something, so the equality is non-vacuous.
        assert serial.total_failure_events > 0

    def test_repeat_run_is_bit_identical(self):
        first, _ = _event_campaign(workers=1)
        second, _ = _event_campaign(workers=1)
        for a, b in zip(first.results, second.results):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_trials_draw_independent_schedules(self):
        campaign, _ = _event_campaign(workers=1)
        fingerprints = {r.failure_events for r in campaign.results} | {
            r.retries for r in campaign.results
        }
        # Per-trial schedules come from per-trial RNG streams; four
        # trials collapsing onto one value would mean a shared stream.
        assert len(fingerprints) > 1


class TestMonteCarloDeterminism:
    def _report(self, workers: int):
        cfg = SimulationConfig(
            params=_params(), trials=8, seed=21, workers=workers, chaos=_chaos(),
        )
        return MonteCarloSimulator(cfg).uniform_attack(11)

    def test_serial_matches_workers_4(self):
        serial = self._report(workers=1)
        parallel = self._report(workers=4)
        np.testing.assert_array_equal(
            serial.normalized_max_per_trial, parallel.normalized_max_per_trial
        )

    def test_chaos_changes_the_trials(self):
        # The full-keyspace attack spreads load over every node, so
        # degradation visibly re-concentrates it (x = c + 1 puts a
        # single ball on one node either way).
        healthy = MonteCarloSimulator(
            SimulationConfig(params=_params(), trials=8, seed=21)
        ).uniform_attack(500)
        chaotic = MonteCarloSimulator(
            SimulationConfig(
                params=_params(), trials=8, seed=21, chaos=_chaos(),
            )
        ).uniform_attack(500)
        assert not np.array_equal(
            healthy.normalized_max_per_trial, chaotic.normalized_max_per_trial
        )

"""Tests for the Monte-Carlo placement simulator and the trial runner."""

import numpy as np
import pytest

from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.analytic import (
    MonteCarloSimulator,
    best_achievable_gain,
    simulate_distribution,
    simulate_uniform_attack,
)
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_trials
from repro.types import LoadVector
from repro.workload.distributions import UniformDistribution
from repro.workload.zipf import ZipfDistribution


class TestRunTrials:
    def test_aggregates_per_trial_gains(self):
        def trial(gen):
            return LoadVector(loads=np.array([1.0, float(gen.integers(1, 5))]), total_rate=4.0)

        report = run_trials(trial, trials=50, seed=1, label="t")
        assert report.trials == 50
        assert report.worst_case >= report.mean

    def test_reproducible(self):
        def trial(gen):
            return LoadVector(loads=gen.random(4) + 0.1, total_rate=2.0)

        a = run_trials(trial, trials=10, seed=9, label="t")
        b = run_trials(trial, trials=10, seed=9, label="t")
        assert (a.normalized_max_per_trial == b.normalized_max_per_trial).all()

    def test_label_separates_campaigns(self):
        def trial(gen):
            return LoadVector(loads=gen.random(4) + 0.1, total_rate=2.0)

        a = run_trials(trial, trials=10, seed=9, label="one")
        b = run_trials(trial, trials=10, seed=9, label="two")
        assert not (a.normalized_max_per_trial == b.normalized_max_per_trial).all()

    def test_rejects_configuration_drift(self):
        calls = []

        def trial(gen):
            calls.append(1)
            rate = 2.0 if len(calls) == 1 else 3.0
            return LoadVector(loads=np.array([1.0]), total_rate=rate)

        with pytest.raises(SimulationError):
            run_trials(trial, trials=2, seed=1)

    def test_rejects_zero_trials(self):
        with pytest.raises(SimulationError):
            run_trials(lambda g: None, trials=0)


class TestUniformAttack:
    def _params(self):
        return SystemParameters(n=50, m=2000, c=20, d=3, rate=1000.0)

    def test_single_uncached_key_lands_on_one_node(self):
        params = self._params()
        report = simulate_uniform_attack(params, x=21, trials=10, seed=1)
        # One ball at rate R/21 on one node: gain = n/21 exactly.
        assert report.worst_case == pytest.approx(50.0 / 21.0)
        assert report.std == pytest.approx(0.0, abs=1e-12)

    def test_fully_cached_attack_is_zero(self):
        params = self._params()
        report = simulate_uniform_attack(params, x=20, trials=3, seed=1)
        assert report.worst_case == 0.0

    def test_case_structure_small_vs_large_cache(self):
        small = SystemParameters(n=50, m=2000, c=20, d=3, rate=1000.0)
        large = SystemParameters(n=50, m=2000, c=200, d=3, rate=1000.0)
        # Small cache: flooding x=c+1 is effective.
        gain_small = simulate_uniform_attack(small, 21, trials=10, seed=2).worst_case
        assert gain_small > 1.0
        # Large cache (> n k + 1 for any sane k): flooding x=c+1 is not.
        gain_large = simulate_uniform_attack(large, 201, trials=10, seed=2).worst_case
        assert gain_large < 1.0

    def test_decreasing_in_x_for_small_cache(self):
        params = self._params()
        gains = [
            simulate_uniform_attack(params, x, trials=15, seed=3).worst_case
            for x in (21, 100, 1000, 2000)
        ]
        assert gains[0] > gains[-1]

    def test_replication_helps(self):
        """d = 3 yields a lower worst case than d = 1 at the same x —
        the mechanism behind the whole paper."""
        base = dict(n=50, m=5000, c=0, rate=1000.0)
        x = 5000
        g1 = simulate_uniform_attack(
            SystemParameters(d=1, **base), x, trials=10, seed=4
        ).worst_case
        g3 = simulate_uniform_attack(
            SystemParameters(d=3, **base), x, trials=10, seed=4
        ).worst_case
        assert g3 < g1

    def test_finite_batch_mode_close_to_exact(self):
        params = self._params()
        exact = simulate_uniform_attack(params, 500, trials=10, seed=5).worst_case
        noisy = MonteCarloSimulator(
            SimulationConfig(
                params=params, trials=10, seed=5, exact_rates=False,
                queries_per_trial=200_000,
            )
        ).uniform_attack(500).worst_case
        assert noisy == pytest.approx(exact, rel=0.25)

    def test_rejects_bad_x(self):
        params = self._params()
        with pytest.raises(ConfigurationError):
            simulate_uniform_attack(params, 0, trials=1)
        with pytest.raises(ConfigurationError):
            simulate_uniform_attack(params, params.m + 1, trials=1)

    def test_metadata_recorded(self):
        params = self._params()
        report = simulate_uniform_attack(params, 30, trials=2, seed=1)
        assert report.metadata["x"] == 30
        assert report.metadata["n"] == 50


class TestDistributionAttack:
    def _params(self):
        return SystemParameters(n=50, m=2000, c=50, d=3, rate=1000.0)

    def test_uniform_distribution_gain_near_one(self):
        params = self._params()
        report = simulate_distribution(
            params, UniformDistribution(params.m), trials=10, seed=6
        )
        assert 0.8 < report.worst_case < 1.4

    def test_zipf_absorbed_by_cache(self):
        params = self._params()
        zipf = simulate_distribution(
            params, ZipfDistribution(params.m, 1.01), trials=10, seed=6
        )
        uniform = simulate_distribution(
            params, UniformDistribution(params.m), trials=10, seed=6
        )
        assert zipf.worst_case < uniform.worst_case

    def test_mismatched_key_space_rejected(self):
        params = self._params()
        with pytest.raises(SimulationError):
            simulate_distribution(params, UniformDistribution(99), trials=1)

    def test_equivalence_with_uniform_attack(self):
        """An AdversarialDistribution through the generic path gives the
        same statistics as the dedicated uniform-attack path."""
        from repro.workload.adversarial import AdversarialDistribution

        params = self._params()
        x = 300
        a = simulate_uniform_attack(params, x, trials=20, seed=7).mean
        b = simulate_distribution(
            params, AdversarialDistribution(params.m, x), trials=20, seed=7
        ).mean
        assert a == pytest.approx(b, rel=0.15)


class TestBestAchievable:
    def test_small_cache_prefers_small_flood(self):
        params = SystemParameters(n=50, m=2000, c=20, d=3, rate=1000.0)
        gain, x = best_achievable_gain(params, trials=10, seed=8)
        assert x == 21
        assert gain > 1.0

    def test_large_cache_prefers_full_sweep(self):
        params = SystemParameters(n=20, m=2000, c=300, d=3, rate=1000.0)
        gain, x = best_achievable_gain(params, trials=10, seed=8)
        assert x == params.m
        assert gain <= 1.0

    def test_gain_decreases_with_cache(self):
        gains = []
        for c in (10, 50, 150):
            params = SystemParameters(n=50, m=2000, c=c, d=3, rate=1000.0)
            gains.append(best_achievable_gain(params, trials=10, seed=8)[0])
        assert gains[0] > gains[1] > gains[2]

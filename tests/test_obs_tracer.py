"""Contract tests for the phase tracer (repro.obs.tracer)."""

import pytest

from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    as_tracer,
    export_json,
    to_prometheus,
)


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_tracer(**kwargs):
    return Tracer(clock=FakeClock(), **kwargs)


class TestSpans:
    def test_nested_spans_build_slash_paths(self):
        tracer = make_tracer()
        with tracer.span("campaign"):
            with tracer.span("trial"):
                assert tracer.current_path == "campaign/trial"
                assert tracer.depth == 2
            assert tracer.current_path == "campaign"
        assert tracer.current_path == ""
        assert tracer.depth == 0
        assert [span.path for span in tracer.spans()] == ["campaign/trial", "campaign"]

    def test_span_records_duration_from_clock(self):
        tracer = make_tracer()
        with tracer.span("work"):
            pass
        (span,) = tracer.spans()
        assert span.name == "work"
        assert span.duration == 1.0  # one FakeClock step between open/close

    def test_slash_in_name_rejected(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("a/b"):
                pass
        assert tracer.depth == 0

    def test_exception_propagates_but_span_closes(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        # Both spans recorded despite the exception, stack fully unwound.
        assert tracer.depth == 0
        assert [span.path for span in tracer.spans()] == ["outer/inner", "outer"]
        assert all(span.duration is not None for span in tracer.spans())

    def test_sibling_spans_share_a_path(self):
        tracer = make_tracer()
        for _ in range(3):
            with tracer.span("step"):
                pass
        assert tracer.aggregates()["step"]["count"] == 3

    def test_span_as_dict(self):
        tracer = make_tracer()
        with tracer.span("phase"):
            pass
        record = tracer.spans()[0].as_dict()
        assert record == {"name": "phase", "path": "phase", "start": 0.0, "duration": 1.0}


class TestAggregates:
    def test_stats_fields(self):
        tracer = make_tracer()
        for _ in range(4):
            with tracer.span("phase"):
                pass
        stats = tracer.aggregates()["phase"]
        assert stats["count"] == 4
        assert stats["total_seconds"] == 4.0
        assert stats["mean_seconds"] == 1.0
        for key in ("p50_seconds", "p95_seconds", "p99_seconds"):
            assert stats[key] == 1.0

    def test_aggregates_sorted_by_path(self):
        tracer = make_tracer()
        with tracer.span("zeta"):
            pass
        with tracer.span("alpha"):
            pass
        assert list(tracer.aggregates()) == ["alpha", "zeta"]

    def test_raw_span_cap_does_not_stop_aggregation(self):
        tracer = make_tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("phase"):
                pass
        assert len(tracer.spans()) == 2
        assert tracer.dropped_spans == 3
        assert tracer.aggregates()["phase"]["count"] == 5

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=-1)

    def test_to_dict_shape(self):
        tracer = make_tracer()
        with tracer.span("phase"):
            pass
        document = tracer.to_dict()
        assert set(document) == {"aggregates", "spans", "dropped_spans"}
        assert document["dropped_spans"] == 0
        assert document["spans"][0]["path"] == "phase"


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_span_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything") as span:
            assert span is None
        assert tracer.spans() == []
        assert tracer.aggregates() == {}
        assert tracer.to_dict() == {"aggregates": {}, "spans": [], "dropped_spans": 0}

    def test_null_span_accepts_slashes(self):
        # The null tracer skips validation entirely — it must cost nothing.
        with NULL_TRACER.span("a/b"):
            pass

    def test_as_tracer_normalises_none(self):
        assert as_tracer(None) is NULL_TRACER
        real = Tracer()
        assert as_tracer(real) is real


class TestTracerExport:
    def test_json_export_carries_trace(self):
        tracer = make_tracer()
        with tracer.span("phase"):
            pass
        document = export_json(tracer=tracer)
        assert document["trace"]["aggregates"]["phase"]["count"] == 1

    def test_prometheus_summary_series(self):
        tracer = make_tracer()
        with tracer.span("campaign"):
            with tracer.span("trial"):
                pass
        text = to_prometheus(MetricsRegistry(), tracer=tracer)
        assert "# TYPE repro_span_duration_seconds summary" in text
        assert (
            'repro_span_duration_seconds{quantile="0.5",span="campaign/trial"}' in text
        )
        assert 'repro_span_duration_seconds_count{span="campaign"} 1' in text

    def test_empty_tracer_renders_nothing(self):
        assert to_prometheus(tracer=Tracer()) == ""

"""Tests for repro.core.provisioning (the operator-facing API)."""

import pytest

from repro.core.bounds import fold_constant_k
from repro.core.notation import SystemParameters
from repro.core.provisioning import (
    is_provably_protected,
    min_node_capacity,
    recommend,
    required_cache_size,
)
from repro.exceptions import ConfigurationError


class TestRequiredCacheSize:
    def test_paper_headline(self):
        assert required_cache_size(1000, 3, k=1.2) == 1201

    def test_order_n_for_realistic_clusters(self):
        # O(n) headline: a handful of cache entries per node suffice
        # across the whole realistic range (log log n / log d < ~2.25
        # with natural logs for n < 1e5, d >= 3).
        for n in (100, 1000, 10_000, 99_999):
            c_star = required_cache_size(n, 3, k_prime=1.0)
            assert c_star <= 3.5 * n + 2

    def test_independent_of_item_count(self):
        # Signature doesn't even accept m — scalability by construction.
        assert required_cache_size(1000, 3, k=2.0) == 2001

    def test_more_replication_needs_less_cache(self):
        assert required_cache_size(1000, 5, k_prime=0.5) < required_cache_size(
            1000, 2, k_prime=0.5
        )


class TestIsProvablyProtected:
    def test_small_cache_not_protected(self, paper_params):
        assert not is_provably_protected(paper_params, k=1.2)

    def test_big_cache_protected(self):
        params = SystemParameters(n=1000, m=100_000, c=2000, d=3)
        assert is_provably_protected(params, k=1.2)

    def test_full_cache_always_protected(self):
        params = SystemParameters(n=1000, m=500, c=500, d=3)
        # c = m < n k + 1, but the cache holds every item.
        assert is_provably_protected(params, k=5.0)


class TestMinNodeCapacity:
    def test_exceeds_even_split_when_vulnerable(self, paper_params):
        assert min_node_capacity(paper_params, k=1.2) > paper_params.even_split

    def test_close_to_even_split_when_protected(self):
        params = SystemParameters(n=1000, m=100_000, c=2000, d=3, rate=1e5)
        capacity = min_node_capacity(params, k=1.2)
        assert capacity <= params.even_split  # Case 2: gain bound < 1

    def test_zero_when_everything_cached(self):
        params = SystemParameters(n=10, m=20, c=20, d=2, rate=100.0)
        assert min_node_capacity(params, k=1.0) == 0.0


class TestRecommend:
    def test_report_fields_consistent(self, paper_params):
        report = recommend(paper_params, k=1.2)
        assert report.required_cache == 1201
        assert not report.protected
        assert report.worst_gain_bound > 1.0
        assert report.min_capacity == pytest.approx(
            report.worst_gain_bound * paper_params.even_split
        )

    def test_cache_to_nodes_ratio(self, paper_params):
        report = recommend(paper_params, k=1.2)
        assert report.cache_to_nodes_ratio == pytest.approx(1.201)

    def test_default_k_is_theory_plus_conservative_prime(self, paper_params):
        report = recommend(paper_params)
        assert report.k == pytest.approx(fold_constant_k(1000, 3, 1.0))

    def test_describe_mentions_verdict(self, paper_params):
        assert "VULNERABLE" in recommend(paper_params, k=1.2).describe()
        protected = paper_params.with_cache(5000)
        assert "PROTECTED" in recommend(protected, k=1.2).describe()

    def test_rejects_negative_k(self, paper_params):
        with pytest.raises(ConfigurationError):
            recommend(paper_params, k=-1.0)

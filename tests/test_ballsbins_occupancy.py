"""Tests for repro.ballsbins.occupancy (stats and k' calibration)."""

import math

import numpy as np
import pytest

from repro.ballsbins.occupancy import (
    calibrate_k_prime,
    max_occupancy_trials,
    occupancy_stats,
)
from repro.exceptions import ConfigurationError


class TestOccupancyStats:
    def test_basic_fields(self):
        stats = occupancy_stats(np.array([0, 1, 2, 5]))
        assert stats.balls == 8
        assert stats.bins == 4
        assert stats.max_load == 5
        assert stats.min_load == 0
        assert stats.mean_load == pytest.approx(2.0)
        assert stats.gap == pytest.approx(3.0)
        assert stats.empty_bins == 1

    def test_describe(self):
        text = occupancy_stats(np.array([1, 1])).describe()
        assert "2 balls" in text

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            occupancy_stats(np.array([]))


class TestMaxOccupancyTrials:
    def test_shape_and_reproducibility(self):
        a = max_occupancy_trials(1000, 50, 3, trials=5, seed=3)
        b = max_occupancy_trials(1000, 50, 3, trials=5, seed=3)
        assert a.shape == (5,)
        assert (a == b).all()

    def test_trials_are_independent(self):
        maxima = max_occupancy_trials(5000, 20, 1, trials=10, seed=3)
        assert len(set(maxima.tolist())) > 1  # one-choice maxima fluctuate

    def test_d_one_supported(self):
        maxima = max_occupancy_trials(1000, 10, 1, trials=3, seed=1)
        assert (maxima >= 100).all()

    def test_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            max_occupancy_trials(10, 5, 2, trials=0)


class TestCalibrateKPrime:
    def test_small_for_d_choice(self):
        """The Theta(1) remainder is genuinely O(1): across load levels
        it stays within a narrow band around zero."""
        for balls in (2000, 20_000):
            k_prime = calibrate_k_prime(balls, 200, 3, trials=15, seed=5)
            assert -1.5 < k_prime < 1.5

    def test_quantile_ordering(self):
        hi = calibrate_k_prime(5000, 100, 3, trials=20, seed=5, quantile=1.0)
        lo = calibrate_k_prime(5000, 100, 3, trials=20, seed=5, quantile=0.0)
        assert hi >= lo

    def test_calibrated_bound_covers_simulation(self):
        """Folding the calibrated k' back into the bound covers fresh
        (different-seed) simulations."""
        balls, bins, d = 10_000, 100, 3
        k_prime = calibrate_k_prime(balls, bins, d, trials=25, seed=11, quantile=1.0)
        bound = balls / bins + math.log(math.log(bins)) / math.log(d) + k_prime + 0.5
        fresh = max_occupancy_trials(balls, bins, d, trials=15, seed=99)
        assert (fresh <= bound).all()

    def test_rejects_d_one(self):
        with pytest.raises(ConfigurationError):
            calibrate_k_prime(100, 10, 1)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ConfigurationError):
            calibrate_k_prime(100, 10, 2, quantile=1.5)

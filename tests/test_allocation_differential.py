"""Property-based differential test: batched d-choice kernel vs the
sequential reference.

The batched numpy kernel (:func:`repro.ballsbins.allocation._d_choice_batched`)
promises *byte-identical* occupancy vectors to the plain greedy loop —
including first-candidate tie-breaking — for any candidate matrix.  The
tests here draw random ``(bins, d, balls, seed)`` configurations (plus
adversarially collision-heavy ones) and require exact equality; a single
off-by-one placement fails loudly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ballsbins.allocation import (
    _d_choice_batched,
    _d_choice_sequential,
    d_choice_allocate,
    sample_replica_groups,
)


def _assert_identical(choices: np.ndarray, bins: int) -> None:
    """Both kernels on the same candidate matrix; exact equality."""
    balls, d = choices.shape
    sequential = d_choice_allocate(
        balls, bins, d, choices=choices, method="sequential"
    )
    batched = d_choice_allocate(balls, bins, d, choices=choices, method="batched")
    np.testing.assert_array_equal(batched, sequential)
    assert batched.dtype == sequential.dtype == np.int64
    assert int(batched.sum()) == balls


@st.composite
def _configs(draw, max_balls=2000, min_balls=0):
    bins = draw(st.integers(min_value=2, max_value=200))
    d = draw(st.integers(min_value=2, max_value=min(6, bins)))
    balls = draw(st.integers(min_value=min_balls, max_value=max_balls))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return bins, d, balls, seed


class TestBatchedMatchesSequential:
    @given(_configs())
    @settings(max_examples=60, deadline=None)
    def test_random_configurations(self, config):
        bins, d, balls, seed = config
        choices = sample_replica_groups(balls, bins, d, rng=seed)
        _assert_identical(choices, bins)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=2, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_collision_heavy_tiny_bin_space(self, seed, d):
        # Few bins + many balls: almost every ball conflicts with an
        # earlier one, so the batched kernel's defer-and-retry rounds
        # and the tie-breaking path carry all the weight.
        bins = d + 1
        choices = sample_replica_groups(500, bins, d, rng=seed)
        _assert_identical(choices, bins)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_with_replacement_duplicate_rows(self, seed):
        # distinct=False allows a ball to list the same bin twice; a
        # ball must not be blocked by its *own* claim.
        choices = sample_replica_groups(400, 10, 3, rng=seed, distinct=False)
        _assert_identical(choices, 10)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_explicit_tiny_windows(self, seed, window):
        # Force pathological window sizes (down to one ball per window)
        # through the kernel directly.
        choices = sample_replica_groups(300, 24, 3, rng=seed)
        batched = _d_choice_batched(
            np.ascontiguousarray(choices), 24, window=window
        )
        np.testing.assert_array_equal(batched, _d_choice_sequential(choices, 24))

    def test_worst_case_all_same_candidates(self):
        # Every ball lists the identical candidate set: pure sequential
        # dependency, every round places exactly one ball.
        choices = np.tile(np.array([3, 1, 4], dtype=np.int64), (200, 1))
        _assert_identical(choices, 6)
        sequential = _d_choice_sequential(choices, 6)
        # Ties go to the first listed candidate: 3 before 1 before 4.
        assert sequential[3] >= sequential[1] >= sequential[4]

    def test_d2_specialised_reduction(self):
        # d == 2 takes the strided-view shortcut in the kernel.
        choices = sample_replica_groups(5000, 40, 2, rng=99)
        _assert_identical(choices, 40)


@pytest.mark.slow
class TestBatchedMatchesSequentialSlow:
    """Paper-scale sweeps past the auto-dispatch threshold."""

    @given(_configs(max_balls=30_000, min_balls=4096))
    @settings(max_examples=15, deadline=None)
    def test_large_random_configurations(self, config):
        bins, d, balls, seed = config
        choices = sample_replica_groups(balls, bins, d, rng=seed)
        _assert_identical(choices, bins)

    def test_auto_dispatch_agrees_both_sides_of_threshold(self):
        for balls in (4095, 4096, 20_000):
            for bins, d in ((1000, 3), (24, 3), (16, 2)):
                choices = sample_replica_groups(balls, bins, d, rng=balls + bins)
                auto = d_choice_allocate(
                    balls, bins, d, choices=choices, method="auto"
                )
                np.testing.assert_array_equal(
                    auto, _d_choice_sequential(choices, bins)
                )

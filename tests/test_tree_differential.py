"""Differential suite: the degenerate cache tree must equal the flat path.

A one-layer, one-shard :class:`~repro.cache.tree.CacheTree` wraps a
single cache instance; it promises to be a *bit-identical* stand-in for
running that cache flat — same :class:`EventSimResult` floats and
arrays, same RNG stream consumption, same metrics export, same monitor
telemetry — across the routing x cache-policy grid the kernel
differential suite uses.  That contract is what lets tree scenarios
reuse every flat-path golden and bound without a tolerance.

The suite also pins the fallback seam ISSUE 9 calls out: a tree of
perfect caches is per-shard statically resident, and the batched kernel
would happily precompute hit/miss against the edge layer's resident set
alone — :func:`repro.sim.kernel.supports` must reject ``HIERARCHICAL``
caches *before* it looks at ``STATIC_RESIDENCY``.
"""

import functools

import numpy as np
import pytest

from repro.cache import CacheTree, PerfectCache, make_cache
from repro.cluster.hierarchy import (
    LayeredPartitioner,
    TwoChoiceLayerSelection,
)
from repro.core.notation import SystemParameters
from repro.obs import LoadMonitor, MetricsRegistry, MonitorConfig
from repro.obs.export import export_json
from repro.sim import kernel
from repro.sim.batch import run_event_campaign
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution

#: The cache-policy grid: every simple registry policy exercised by the
#: kernel fallback tests, spanning recency, frequency and adaptive
#: families (perfect is covered separately by the supports-gate tests).
POLICIES = ("lru", "fifo", "clock", "lfu", "arc", "sieve")

ROUTINGS = ("pin", "random")


def _params(**overrides):
    base = dict(n=20, m=500, c=10, d=3, rate=2000.0)
    base.update(overrides)
    return SystemParameters(**base)


def assert_results_identical(a, b):
    """Field-by-field exact equality of two EventSimResults."""
    for name in a.__dataclass_fields__:
        left, right = getattr(a, name), getattr(b, name)
        if isinstance(left, np.ndarray):
            assert left.dtype == right.dtype, name
            assert (left == right).all(), name
        elif hasattr(left, "loads"):  # LoadVector
            assert (left.loads == right.loads).all(), name
            assert left.total_rate == right.total_rate, name
        elif isinstance(left, float) and np.isnan(left):
            assert np.isnan(right), name
        else:
            assert left == right, name


def _flat_cache(policy, capacity=10):
    return make_cache(policy, capacity)


def _degenerate_tree(policy, capacity=10):
    return CacheTree([[make_cache(policy, capacity)]])


def _two_layer_tree(policy="lru", capacity=10, seed=5):
    return CacheTree(
        [
            [make_cache(policy, capacity) for _ in range(2)],
            [make_cache(policy, capacity)],
        ],
        partitioner=LayeredPartitioner((2, 1), seed=seed),
        selection=TwoChoiceLayerSelection(),
    )


def _perfect_tree(capacity=10):
    return CacheTree(
        [
            [PerfectCache(capacity), PerfectCache(capacity, range(10, 20))],
            [PerfectCache(capacity)],
        ],
        partitioner=LayeredPartitioner((2, 1), seed=5),
    )


class TestDegenerateIdentity:
    """One layer, one shard == the wrapped cache, bit for bit."""

    @pytest.mark.parametrize("routing", ROUTINGS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_routing_policy_grid(self, routing, policy):
        flat = EventDrivenSimulator(
            _params(), AdversarialDistribution(500, 100),
            cache=_flat_cache(policy), seed=11, routing=routing,
        )
        tree = EventDrivenSimulator(
            _params(), AdversarialDistribution(500, 100),
            cache=_degenerate_tree(policy), seed=11, routing=routing,
        )
        for trial in (0, 1):
            assert_results_identical(
                flat.run(3000, trial=trial), tree.run(3000, trial=trial)
            )

    def test_fast_engine_falls_back_and_matches(self):
        flat = EventDrivenSimulator(
            _params(), AdversarialDistribution(500, 100),
            cache=_flat_cache("lru"), seed=9,
        )
        tree = EventDrivenSimulator(
            _params(), AdversarialDistribution(500, 100),
            cache=_degenerate_tree("lru"), seed=9, engine="fast",
        )
        a, b = flat.run(3000), tree.run(3000)
        assert tree.last_engine == "legacy"
        assert_results_identical(a, b)

    def test_monitor_telemetry_identical(self):
        params = _params()

        def run(cache):
            monitor = LoadMonitor(
                MonitorConfig.from_params(params, x=11, window=0.05)
            )
            sim = EventDrivenSimulator(
                params, AdversarialDistribution(500, 11), seed=7,
                cache=cache, monitor=monitor,
            )
            result = sim.run(4000, trial=0)
            return result, monitor

        a, mon_a = run(_flat_cache("lru"))
        b, mon_b = run(_degenerate_tree("lru"))
        assert_results_identical(a, b)
        assert mon_a.windows == mon_b.windows
        assert mon_a.alerts == mon_b.alerts
        assert mon_a.summaries == mon_b.summaries
        # The degenerate tree declares no layers: flat telemetry stays
        # byte-identical, with no layer_hits / layers keys appended.
        assert all("layer_hits" not in w for w in mon_b.windows)
        assert all("layers" not in s for s in mon_b.summaries)

    def test_metrics_export_identical(self):
        def run(cache):
            registry = MetricsRegistry()
            sim = EventDrivenSimulator(
                _params(), AdversarialDistribution(500, 100), seed=5,
                cache=cache, metrics=registry,
            )
            result = sim.run(3000)
            return result, export_json(metrics=registry)

        a, export_a = run(_flat_cache("lru"))
        b, export_b = run(_degenerate_tree("lru"))
        assert_results_identical(a, b)
        assert export_a == export_b

    def test_cache_stats_identical(self):
        flat, tree = _flat_cache("lru"), _degenerate_tree("lru")
        rng = np.random.default_rng(3)
        for key in rng.integers(0, 40, size=2000):
            assert flat.access(int(key)) == tree.access(int(key))
        shard = tree.layers[0][0]
        assert (flat.stats.hits, flat.stats.misses) == (
            tree.stats.hits, tree.stats.misses
        )
        assert (flat.stats.insertions, flat.stats.evictions) == (
            shard.stats.insertions, shard.stats.evictions
        )
        assert sorted(flat.keys()) == sorted(tree.keys())
        assert len(flat) == len(tree)


class TestCampaignIdentity:
    """Campaign plumbing: serial == workers=4, tree or flat."""

    def _campaign(self, factory, workers, layered=False):
        params = _params()
        monitor = LoadMonitor(
            MonitorConfig.from_params(params, x=11, window=0.05)
        )
        campaign = run_event_campaign(
            params,
            AdversarialDistribution(500, 11),
            trials=4,
            n_queries=2000,
            seed=17,
            cache_factory=factory,
            workers=workers,
            monitor=monitor,
        )
        assert (
            any("layers" in s for s in monitor.summaries) is layered
        )
        return campaign, monitor

    def _assert_campaigns_identical(self, serial, parallel):
        campaign_a, mon_a = serial
        campaign_b, mon_b = parallel
        for a, b in zip(campaign_a.results, campaign_b.results):
            assert_results_identical(a, b)
        assert (
            campaign_a.load_report.normalized_max_per_trial
            == campaign_b.load_report.normalized_max_per_trial
        ).all()
        assert mon_a.windows == mon_b.windows
        assert mon_a.alerts == mon_b.alerts
        assert mon_a.summaries == mon_b.summaries

    def test_degenerate_tree_campaign_matches_flat(self):
        flat = self._campaign(functools.partial(_flat_cache, "lru"), 1)
        tree = self._campaign(functools.partial(_degenerate_tree, "lru"), 1)
        self._assert_campaigns_identical(flat, tree)

    def test_degenerate_tree_serial_vs_parallel(self):
        factory = functools.partial(_degenerate_tree, "lru")
        self._assert_campaigns_identical(
            self._campaign(factory, 1), self._campaign(factory, 4)
        )

    def test_layered_tree_serial_vs_parallel(self):
        factory = functools.partial(_two_layer_tree, "lru")
        serial = self._campaign(factory, 1, layered=True)
        parallel = self._campaign(factory, 4, layered=True)
        self._assert_campaigns_identical(serial, parallel)
        # Layered windows actually carried per-layer telemetry.
        mon = serial[1]
        assert any(
            any(w.get("layer_hits", {}).values()) for w in mon.windows
        )


class TestSupportsGate:
    """ISSUE 9's latent seam: HIERARCHICAL must veto STATIC_RESIDENCY."""

    def test_perfect_tree_is_static_but_unsupported(self):
        tree = _perfect_tree()
        # The trap: every shard is statically resident, so the tree as a
        # whole reports STATIC_RESIDENCY=True...
        assert tree.STATIC_RESIDENCY is True
        assert tree.HIERARCHICAL is True
        sim = EventDrivenSimulator(
            _params(), AdversarialDistribution(500, 11), cache=tree, seed=1,
        )
        # ...and only the HIERARCHICAL gate keeps it off the fast path.
        assert not kernel.supports(sim)

    def test_flat_perfect_cache_still_supported(self):
        sim = EventDrivenSimulator(
            _params(), AdversarialDistribution(500, 11), seed=1,
        )
        assert kernel.supports(sim)

    def test_fast_engine_runs_legacy_for_perfect_tree(self):
        sim = EventDrivenSimulator(
            _params(), AdversarialDistribution(500, 11),
            cache=_perfect_tree(), seed=1, engine="fast",
        )
        sim.run(1000)
        assert sim.last_engine == "legacy"

    def test_degenerate_perfect_tree_matches_flat_legacy(self):
        # Degeneracy holds for static shards too: a 1x1 tree of the
        # default perfect cache equals the flat default, via legacy.
        flat = EventDrivenSimulator(
            _params(), AdversarialDistribution(500, 11), seed=2,
            engine="legacy",
        )
        tree = EventDrivenSimulator(
            _params(), AdversarialDistribution(500, 11),
            cache=CacheTree([[PerfectCache(10)]]), seed=2, engine="fast",
        )
        a, b = flat.run(2000), tree.run(2000)
        assert tree.last_engine == "legacy"
        assert_results_identical(a, b)

"""Contract tests for the metrics registry (repro.obs.metrics).

These pin down the documented guarantees: counter monotonicity,
histogram quantile estimates within one bucket of the exact order
statistic, merge associativity/commutativity, and the null registry's
total inertness.
"""

import json
import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    as_registry,
    export_json,
    to_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(3)
        counter.inc(0.5)
        assert counter.value == 4.5

    def test_zero_increment_allowed(self):
        counter = Counter("c")
        counter.inc(0)
        assert counter.value == 0.0

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        counter.inc(2)
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 2  # unchanged by the failed call

    @given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_monotone_over_any_increment_sequence(self, amounts):
        counter = Counter("c")
        previous = counter.value
        for amount in amounts:
            counter.inc(amount)
            assert counter.value >= previous
            previous = counter.value
        assert counter.value == sum(amounts)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec(5)
        assert gauge.value == 7.5

    def test_can_go_negative(self):
        gauge = Gauge("g")
        gauge.dec(3)
        assert gauge.value == -3.0


class TestHistogram:
    def test_totals_and_extremes(self):
        histogram = Histogram("h")
        for value in (0.5, 2.0, 8.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 10.5
        assert histogram.min == 0.5
        assert histogram.max == 8.0

    def test_empty_quantile_is_nan(self):
        histogram = Histogram("h")
        assert math.isnan(histogram.quantile(0.5))

    def test_quantile_domain_checked(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_bounds_must_be_increasing_and_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0, 2.0))

    def test_bucketing_follows_le_convention(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (1.0, 1.5, 2.0, 5.0):
            histogram.observe(value)
        # v <= 1 -> bucket 0; 1 < v <= 2 -> bucket 1; overflow last.
        assert histogram.counts == [1, 2, 0, 1]

    def test_observe_many_matches_loop(self):
        a, b = Histogram("h"), Histogram("h")
        values = [0.1, 0.2, 3.0, 700.0]
        a.observe_many(values)
        for value in values:
            b.observe(value)
        assert a.counts == b.counts
        assert a.sum == b.sum

    def test_percentiles_trio(self):
        histogram = Histogram("h")
        histogram.observe_many(range(1, 101))
        trio = histogram.percentiles()
        assert set(trio) == {"p50", "p95", "p99"}
        assert trio["p50"] <= trio["p95"] <= trio["p99"]

    def test_single_observation_quantiles_exact(self):
        histogram = Histogram("h")
        histogram.observe(3.7)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 3.7

    def test_single_negative_observation_quantiles_exact(self):
        # The count==1 early return must hand back the value itself,
        # whatever its sign — not a bucket boundary or a falsy default.
        histogram = Histogram("h")
        histogram.observe(-2.5)
        for q in (0.0, 0.5, 1.0):
            assert histogram.quantile(q) == -2.5

    def test_extreme_quantiles_are_exact_min_max(self):
        histogram = Histogram("h")
        histogram.observe_many([0.3, 1.7, 42.0, 9000.0])
        assert histogram.quantile(0.0) == 0.3
        assert histogram.quantile(1.0) == 9000.0

    def test_empty_percentiles_all_nan(self):
        histogram = Histogram("h")
        assert all(math.isnan(v) for v in histogram.percentiles().values())

    @given(
        values=st.lists(
            st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        q=st.sampled_from([0.5, 0.9, 0.95, 0.99, 1.0]),
    )
    @settings(max_examples=80, deadline=None)
    def test_quantile_within_one_bucket_of_exact(self, values, q):
        """The estimate shares a power-of-two bucket with the exact
        nearest-rank order statistic: at most a factor of 2 apart, and
        always inside the observed [min, max] range."""
        histogram = Histogram("h")
        histogram.observe_many(values)
        estimate = histogram.quantile(q)
        exact = float(np.quantile(values, q, method="inverted_cdf"))
        assert min(values) <= estimate <= max(values)
        assert exact / 2 - 1e-12 <= estimate <= exact * 2 + 1e-12


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", policy="lru").inc(1)
        registry.counter("hits", policy="fifo").inc(2)
        assert registry.counter("hits", policy="lru").value == 1
        assert registry.counter("hits", policy="fifo").value == 2
        assert len(registry) == 2

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("c", x=1, y=2)
        b = registry.counter("c", y=2, x=1)
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError):
            registry.gauge("n")
        with pytest.raises(ValueError):
            registry.histogram("n")

    def test_introspection_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.counter("a")
        registry.counter("a", node="1")
        assert [(c.name, c.labels) for c in registry.counters()] == [
            ("a", ()),
            ("a", (("node", "1"),)),
            ("z", ()),
        ]

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        text = json.dumps(registry.snapshot(), sort_keys=True)
        parsed = json.loads(text)
        assert parsed["counters"][0] == {"name": "c", "labels": {"k": "v"}, "value": 2}

    def test_default_histogram_uses_shared_bounds(self):
        registry = MetricsRegistry()
        assert registry.histogram("h").bounds == DEFAULT_BUCKETS


def _fill(registry, spec):
    """Apply a plain-data spec: counter incs, gauge sets, observations."""
    for name, amount in spec.get("counters", []):
        registry.counter(name).inc(amount)
    for name, value in spec.get("gauges", []):
        registry.gauge(name).set(value)
    for name, value in spec.get("histograms", []):
        registry.histogram(name).observe(value)
    return registry


# Integer-valued increments/observations keep every merge exact, so the
# associativity and commutativity assertions can use ==, not approx.
_spec_strategy = st.fixed_dictionaries(
    {
        "counters": st.lists(
            st.tuples(st.sampled_from(["c1", "c2"]), st.integers(0, 1000)),
            max_size=6,
        ),
        "gauges": st.lists(
            st.tuples(st.sampled_from(["g1", "g2"]), st.integers(-50, 50)),
            max_size=6,
        ),
        "histograms": st.lists(
            st.tuples(st.sampled_from(["h1", "h2"]), st.integers(1, 10**6)),
            max_size=6,
        ),
    }
)


class TestMerge:
    def test_counter_merge_sums(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        a.merge(b)
        assert a.counter("c").value == 7

    def test_gauge_merge_keeps_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(5)
        b.gauge("g").set(3)
        a.merge(b)
        assert a.gauge("g").value == 5
        b.merge(a)
        assert b.gauge("g").value == 5

    def test_histogram_merge_is_exact(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe_many([1.0, 2.0])
        b.histogram("h").observe_many([4.0, 1000.0])
        a.merge(b)
        merged = a.histogram("h")
        reference = Histogram("h")
        reference.observe_many([1.0, 2.0, 4.0, 1000.0])
        assert merged.counts == reference.counts
        assert merged.sum == reference.sum
        assert merged.count == 4
        assert merged.min == 1.0
        assert merged.max == 1000.0

    def test_merge_into_empty_is_identity(self):
        source = _fill(
            MetricsRegistry(),
            {"counters": [("c1", 5)], "gauges": [("g1", -2)], "histograms": [("h1", 9)]},
        )
        target = MetricsRegistry()
        target.merge(source)
        assert target.snapshot() == source.snapshot()

    def test_bounds_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(1.0)
        b.histogram("h").observe(1.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_accepts_registry_or_snapshot(self):
        source = MetricsRegistry()
        source.counter("c").inc(2)
        via_registry, via_snapshot = MetricsRegistry(), MetricsRegistry()
        via_registry.merge(source)
        via_snapshot.merge(source.snapshot())
        assert via_registry.snapshot() == via_snapshot.snapshot()

    @given(a=_spec_strategy, b=_spec_strategy)
    @settings(max_examples=40, deadline=None)
    def test_merge_commutative(self, a, b):
        left = _fill(MetricsRegistry(), a)
        left.merge(_fill(MetricsRegistry(), b))
        right = _fill(MetricsRegistry(), b)
        right.merge(_fill(MetricsRegistry(), a))
        assert left.snapshot() == right.snapshot()

    @given(a=_spec_strategy, b=_spec_strategy, c=_spec_strategy)
    @settings(max_examples=40, deadline=None)
    def test_merge_associative(self, a, b, c):
        # (A + B) + C
        ab = _fill(MetricsRegistry(), a)
        ab.merge(_fill(MetricsRegistry(), b))
        ab.merge(_fill(MetricsRegistry(), c))
        # A + (B + C)
        bc = _fill(MetricsRegistry(), b)
        bc.merge(_fill(MetricsRegistry(), c))
        a_bc = _fill(MetricsRegistry(), a)
        a_bc.merge(bc)
        assert ab.snapshot() == a_bc.snapshot()


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_records_nothing(self):
        registry = NullRegistry()
        registry.counter("c", policy="lru").inc(10)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert len(registry) == 0
        assert registry.snapshot() == {"counters": [], "gauges": [], "histograms": []}

    def test_hands_out_shared_singleton(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.histogram("b")

    def test_null_metric_surface_is_inert(self):
        metric = NULL_REGISTRY.counter("c")
        metric.inc(5)
        metric.dec(5)
        metric.set(9)
        metric.observe(1.0)
        metric.observe_many([1.0, 2.0])
        assert metric.value == 0.0
        assert math.isnan(metric.quantile(0.5))
        assert all(math.isnan(v) for v in metric.percentiles().values())

    def test_merge_into_null_is_noop(self):
        source = MetricsRegistry()
        source.counter("c").inc(3)
        registry = NullRegistry()
        registry.merge(source)
        assert registry.snapshot() == {"counters": [], "gauges": [], "histograms": []}

    def test_as_registry_normalises_none(self):
        assert as_registry(None) is NULL_REGISTRY
        real = MetricsRegistry()
        assert as_registry(real) is real


class TestPickling:
    def test_registry_round_trips(self):
        registry = _fill(
            MetricsRegistry(),
            {"counters": [("c1", 7)], "gauges": [("g1", 3)], "histograms": [("h1", 42)]},
        )
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()
        clone.counter("c1").inc(1)  # still usable after the round trip
        assert clone.counter("c1").value == 8

    def test_null_registry_round_trips(self):
        clone = pickle.loads(pickle.dumps(NULL_REGISTRY))
        assert clone.enabled is False
        clone.counter("c").inc(5)
        assert clone.snapshot() == {"counters": [], "gauges": [], "histograms": []}


class TestExportFormats:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", node="0").inc(10)
        registry.gauge("cache_size", policy="lru").set(4)
        registry.histogram("latency_seconds").observe_many([0.001, 0.002, 0.5])
        return registry

    def test_export_json_shape(self):
        document = export_json(self._registry(), extra={"figure": "fig3a"})
        assert document["version"] == 1
        assert document["figure"] == "fig3a"
        names = {c["name"] for c in document["metrics"]["counters"]}
        assert names == {"requests_total"}
        histogram = document["metrics"]["histograms"][0]
        assert {"p50", "p95", "p99", "bounds", "counts"} <= set(histogram)

    def test_prometheus_text_format(self):
        text = to_prometheus(self._registry())
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{node="0"} 10' in text
        assert "# TYPE repro_cache_size gauge" in text
        assert "# TYPE repro_latency_seconds histogram" in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_latency_seconds_count 3" in text

    def test_prometheus_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0)).observe_many([0.5, 1.5, 9.0])
        text = to_prometheus(registry)
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="2"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text

    def test_deterministic_output(self):
        assert to_prometheus(self._registry()) == to_prometheus(self._registry())
        assert export_json(self._registry()) == export_json(self._registry())

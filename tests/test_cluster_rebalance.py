"""Tests for repro.cluster.rebalance (migration cost of topology change)."""

import numpy as np
import pytest

from repro.cluster.partitioner import (
    ConsistentHashPartitioner,
    RandomTablePartitioner,
)
from repro.cluster.rebalance import grow_ring, migration_plan
from repro.exceptions import ConfigurationError

KEYS = np.arange(3000)


class TestMigrationPlan:
    def test_identical_partitioners_move_nothing(self):
        part = RandomTablePartitioner(10, 3, m=3000, seed=1)
        plan = migration_plan(part, part, KEYS)
        assert plan.keys_affected == 0
        assert plan.replicas_moved == 0
        assert plan.moved_fraction == 0.0

    def test_resampled_table_moves_almost_everything(self):
        before = RandomTablePartitioner(10, 3, m=3000, seed=1)
        after = RandomTablePartitioner(10, 3, m=3000, seed=2)
        plan = migration_plan(before, after, KEYS)
        # Independent redraws: each key keeps a given replica only by
        # chance; the moved fraction is large.
        assert plan.moved_fraction > 0.5
        assert plan.affected_fraction > 0.9

    def test_mixed_replication_rejected(self):
        a = RandomTablePartitioner(10, 2, m=100, seed=1)
        b = RandomTablePartitioner(10, 3, m=100, seed=1)
        with pytest.raises(ConfigurationError):
            migration_plan(a, b, np.arange(100))

    def test_describe(self):
        part = RandomTablePartitioner(5, 2, m=100, seed=1)
        text = migration_plan(part, part, np.arange(100)).describe()
        assert "0/100 keys affected" in text

    def test_fraction_accounting(self):
        before = RandomTablePartitioner(10, 3, m=3000, seed=1)
        after = RandomTablePartitioner(10, 3, m=3000, seed=2)
        plan = migration_plan(before, after, KEYS)
        assert plan.replicas_moved <= plan.total_keys * plan.replication
        assert plan.keys_affected <= plan.total_keys


class TestConsistentHashingGrowth:
    def test_grow_ring_moves_little(self):
        """The consistent-hashing guarantee: adding one node to n moves
        ~1/(n+1) of the placements, not ~all of them."""
        ring = ConsistentHashPartitioner(20, 3, vnodes=64, secret=b"growth")
        grown = grow_ring(ring, 21)
        plan = migration_plan(ring, grown, KEYS)
        assert plan.moved_fraction < 0.15  # ideal ~ 1/21 ~ 0.05, vnode noise
        # Contrast: a re-seeded random table at the new size moves ~everything.
        table_before = RandomTablePartitioner(20, 3, m=3000, seed=1)
        table_after = RandomTablePartitioner(21, 3, m=3000, seed=2)
        table_plan = migration_plan(table_before, table_after, KEYS)
        assert plan.moved_fraction < table_plan.moved_fraction / 4

    def test_growth_scales_with_added_nodes(self):
        ring = ConsistentHashPartitioner(20, 2, vnodes=64, secret=b"growth")
        small_growth = migration_plan(ring, grow_ring(ring, 21), KEYS)
        big_growth = migration_plan(ring, grow_ring(ring, 40), KEYS)
        assert big_growth.moved_fraction > small_growth.moved_fraction

    def test_grown_ring_is_valid_partitioner(self):
        ring = ConsistentHashPartitioner(5, 2, vnodes=16, secret=b"g")
        grown = grow_ring(ring, 8)
        assert grown.n == 8
        assert grown.d == 2
        groups = grown.replica_groups(np.arange(100))
        assert groups.max() < 8
        # New nodes actually receive load.
        assert set(np.unique(groups)) == set(range(8))

    def test_grow_ring_validates(self):
        ring = ConsistentHashPartitioner(5, 2, vnodes=16)
        with pytest.raises(ConfigurationError):
            grow_ring(ring, 5)
        with pytest.raises(ConfigurationError):
            grow_ring(ring, 4)

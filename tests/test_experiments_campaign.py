"""Tests for the full-evaluation campaign runner."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.campaign import FIGURE_DRIVERS, run_campaign


class TestRunCampaign:
    def test_subset_run(self):
        campaign = run_campaign(trials=2, seed=1, figures=["fig5"])
        assert [r.name for r in campaign.results] == ["fig5"]
        assert campaign.trials == 2
        assert campaign.elapsed_seconds > 0

    def test_by_name(self):
        campaign = run_campaign(trials=2, seed=1, figures=["fig5"])
        assert campaign.by_name("fig5").name == "fig5"
        with pytest.raises(ConfigurationError):
            campaign.by_name("fig9")

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(trials=1, figures=["fig9"])

    def test_progress_callback(self):
        lines = []
        run_campaign(trials=2, seed=1, figures=["fig5"], progress=lines.append)
        assert lines and "fig5" in lines[0]

    def test_render_contains_each_figure(self):
        campaign = run_campaign(trials=2, seed=1, figures=["fig5"])
        text = campaign.render()
        assert "full evaluation run" in text
        assert "== fig5" in text

    def test_all_drivers_registered(self):
        assert set(FIGURE_DRIVERS) == {"fig3a", "fig3b", "fig4", "fig5"}

    def test_cli_all_command(self, capsys, tmp_path):
        from repro.cli import main

        out_file = tmp_path / "report.md"
        # Tiny trial count keeps this a smoke test; full runs are the
        # benchmarks' job.
        code = main(["all", "--trials", "2", "--seed", "1", "--output", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "== fig3a" in out and "== fig5" in out
        assert out_file.exists()
        assert "== fig4" in out_file.read_text()

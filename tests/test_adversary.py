"""Tests for repro.adversary (strategies and planner)."""

import numpy as np
import pytest

from repro.adversary.planner import compare_with_baseline, plan_attack
from repro.adversary.strategies import (
    AdaptiveProbingAdversary,
    FixedSubsetFlood,
    OptimalAdversary,
    UniformFlood,
    ZipfClient,
)
from repro.core.bounds import normalized_max_load_bound
from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError


class TestOptimalAdversary:
    def test_case_one_floods_cache_plus_one(self, paper_params):
        adversary = OptimalAdversary(paper_params, k=1.2)
        assert adversary.x == 201
        assert adversary.distribution().x == 201

    def test_case_two_floods_everything(self, paper_params):
        adversary = OptimalAdversary(paper_params.with_cache(2000), k=1.2)
        assert adversary.x == paper_params.m

    def test_only_public_knowledge_consumed(self, paper_params):
        # The constructor signature takes SystemParameters only — no
        # partitioner, no cluster: the information asymmetry is
        # structural.  (A compile-time property, asserted for clarity.)
        adversary = OptimalAdversary(paper_params, k=1.2)
        assert adversary.public is paper_params


class TestSimpleStrategies:
    def test_fixed_subset(self, paper_params):
        flood = FixedSubsetFlood(paper_params, x=500)
        assert flood.distribution().x == 500

    def test_fixed_subset_validates_x(self, paper_params):
        with pytest.raises(ConfigurationError):
            FixedSubsetFlood(paper_params, x=0)
        with pytest.raises(ConfigurationError):
            FixedSubsetFlood(paper_params, x=paper_params.m + 1)

    def test_uniform_flood_covers_key_space(self, paper_params):
        dist = UniformFlood(paper_params).distribution()
        assert dist.m == paper_params.m
        assert np.allclose(dist.probabilities(), 1.0 / paper_params.m)

    def test_zipf_client(self, paper_params):
        dist = ZipfClient(paper_params, s=1.01).distribution()
        assert dist.s == 1.01
        assert dist.m == paper_params.m


class TestAdaptiveProbing:
    def test_finds_case_one_optimum_from_bound_feedback(self, paper_params):
        """Probing against the analytic bound recovers x = c + 1 without
        ever being told k."""
        def feedback(dist):
            return normalized_max_load_bound(paper_params, dist.x, k=1.2)

        adversary = AdaptiveProbingAdversary(paper_params, feedback, probes=10)
        best = adversary.probe()
        assert best == paper_params.c + 1

    def test_finds_case_two_optimum(self, paper_params):
        protected = paper_params.with_cache(2000)
        def feedback(dist):
            return normalized_max_load_bound(protected, dist.x, k=1.2)

        adversary = AdaptiveProbingAdversary(protected, feedback, probes=10)
        assert adversary.probe() == protected.m

    def test_history_recorded(self, paper_params):
        def feedback(dist):
            return float(dist.x)

        adversary = AdaptiveProbingAdversary(paper_params, feedback, probes=5)
        adversary.probe()
        assert len(adversary.history) >= 5
        assert all(gain == float(x) for x, gain in adversary.history)

    def test_distribution_triggers_probe(self, paper_params):
        def feedback(dist):
            return -abs(dist.x - 300)

        adversary = AdaptiveProbingAdversary(paper_params, feedback, probes=8)
        dist = adversary.distribution()
        assert dist.x >= paper_params.c + 1

    def test_rejects_too_few_probes(self, paper_params):
        with pytest.raises(ConfigurationError):
            AdaptiveProbingAdversary(paper_params, lambda d: 0.0, probes=1)

    def test_matches_planner_against_simulator(self):
        """End to end: empirical probing against the real Monte-Carlo
        simulator agrees with the analytic planner's case choice."""
        from repro.sim.analytic import simulate_uniform_attack

        params = SystemParameters(n=50, m=2000, c=20, d=3, rate=1000.0)

        def feedback(dist):
            return simulate_uniform_attack(params, dist.x, trials=5, seed=2).worst_case

        adversary = AdaptiveProbingAdversary(params, feedback, probes=8)
        best = adversary.probe()
        planned = plan_attack(params, k_prime=0.5).x
        # Both should land on the small-flood side (Case 1).
        assert best <= 3 * planned


class TestPlanner:
    def test_plan_attack_matches_core(self, paper_params):
        from repro.core.cases import plan_best_attack

        assert plan_attack(paper_params, k=1.2) == plan_best_attack(paper_params, k=1.2)

    def test_comparison_prevention_flip(self, paper_params):
        protected = paper_params.with_cache(2000)
        comparison = compare_with_baseline(protected, k=1.2)
        assert comparison.replication_prevents
        assert "ineffective" in comparison.describe()

    def test_comparison_both_effective_when_cache_small(self, paper_params):
        comparison = compare_with_baseline(paper_params, k=1.2)
        assert comparison.replicated.effective
        assert comparison.unreplicated.effective
        assert not comparison.replication_prevents

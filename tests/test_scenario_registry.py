"""Registry contract tests: the lockdown layer of the scenario system.

Two guarantees:

1. **Constructibility** — every registered component builds from a
   minimal spec (its registry ``example`` params) against a small
   system context, through the same :func:`repro.scenario.build`
   conventions a YAML file would use.  A component whose registration
   rots (renamed kwarg, broken builder) fails here by name.
2. **Completeness** — every concrete subclass of the component base
   classes inside ``repro.*`` is registered.  Adding a new cache
   policy / partitioner / selection rule / distribution / adversary
   without the ``@register_component`` decorator fails CI with a named
   diff, so nothing can silently stay spec-unaddressable.
"""

import inspect

import pytest

from repro.adversary.strategies import Adversary
from repro.cache.base import Cache
from repro.cluster.partitioner import Partitioner
from repro.cluster.selection import SelectionPolicy
from repro.core.notation import SystemParameters
from repro.exceptions import ScenarioValidationError
from repro.scenario.build import BuildContext, build_component
from repro.scenario.campaign import run_scenario
from repro.scenario.registry import NAMESPACES, REGISTRY, discover
from repro.scenario.spec import ComponentSpec, ScenarioSpec
from repro.workload.distributions import KeyDistribution

#: Small but non-degenerate: every example must construct against it.
SMALL = SystemParameters(n=16, m=300, c=8, d=3, rate=1000.0)
CTX = BuildContext(params=SMALL, seed=3)

#: Engines are run, not constructed — handled by their own test below.
_CONSTRUCTIBLE_NAMESPACES = tuple(ns for ns in NAMESPACES if ns != "engine")


def _component_cases():
    discover()
    return [
        (namespace, name)
        for namespace in _CONSTRUCTIBLE_NAMESPACES
        for name in REGISTRY.names(namespace)
    ]


class TestConstructibility:
    @pytest.mark.parametrize("namespace,name", _component_cases())
    def test_builds_from_example_spec(self, namespace, name):
        entry = REGISTRY.get(namespace, name)
        spec = ComponentSpec.from_data(
            {"kind": name, **entry.example_params(CTX)}, namespace
        )
        component = build_component(namespace, spec, CTX)
        assert component is not None

    @pytest.mark.parametrize("engine", REGISTRY.names("engine"))
    def test_engine_runs_minimal_scenario(self, engine):
        spec = ScenarioSpec.from_dict({
            "scenario": 1,
            "name": f"contract/{engine}",
            "system": {"n": 16, "m": 300, "c": 8, "d": 3, "rate": 1000.0},
            "adversary": {"kind": "subset-flood", "x": 9},
            "engine": engine,
            "trials": 1,
            "queries": 300,
            "seed": 3,
        })
        outcome = run_scenario(spec)
        assert outcome.stats["engine"] == engine
        assert outcome.stats["trials"] == 1
        assert outcome.stats["worst_case"] is None or (
            outcome.stats["worst_case"] >= 0
        )


class TestCompleteness:
    """Every concrete component class in repro.* must be registered."""

    BASES = (Cache, Partitioner, SelectionPolicy, KeyDistribution, Adversary)

    @staticmethod
    def _concrete_subclasses(base):
        out, stack = set(), [base]
        while stack:
            cls = stack.pop()
            for sub in cls.__subclasses__():
                stack.append(sub)
                # Only the library's own classes: test files and user
                # code may subclass the bases without registering.
                if not inspect.isabstract(sub) and sub.__module__.startswith(
                    "repro."
                ):
                    out.add(sub)
        return out

    def test_every_concrete_component_is_registered(self):
        discover()
        registered = {
            entry.factory
            for namespace in NAMESPACES
            for entry in REGISTRY.entries(namespace)
            if isinstance(entry.factory, type)
        }
        concrete = set()
        for base in self.BASES:
            concrete |= self._concrete_subclasses(base)
        missing = sorted(
            f"{cls.__module__}.{cls.__name__}"
            for cls in concrete
            if cls not in registered
        )
        assert not missing, (
            "concrete component classes without @register_component "
            f"(add the decorator where each is defined): {missing}"
        )

    def test_namespace_census(self):
        """The floor per namespace — a pruned DISCOVER_MODULES entry
        would empty a namespace without failing constructibility."""
        discover()
        floor = {
            "workload": 9,
            "cache": 13,
            "partitioner": 3,
            "selection": 6,
            "layer-selection": 2,
            "adversary": 8,
            "chaos": 1,
            "sampler": 2,
            "engine": 2,
        }
        assert set(floor) == set(NAMESPACES)
        for namespace, minimum in floor.items():
            names = REGISTRY.names(namespace)
            assert len(names) >= minimum, (
                f"{namespace}: expected >= {minimum} registered components, "
                f"found {list(names)}"
            )


class TestRegistrySemantics:
    def test_unknown_name_lists_choices(self):
        discover()
        with pytest.raises(ScenarioValidationError) as err:
            REGISTRY.get("cache", "no-such-policy", path="cache.kind")
        assert err.value.path == "cache.kind"
        assert "lru" in str(err.value)

    def test_unknown_namespace_rejected(self):
        with pytest.raises(ScenarioValidationError):
            REGISTRY.get("flux-capacitor", "lru")

    def test_reregistering_same_factory_is_idempotent(self):
        discover()
        entry = REGISTRY.get("cache", "lru")
        again = REGISTRY.register("cache", "lru", entry.factory)
        assert again.factory is entry.factory

    def test_rebinding_name_to_different_factory_fails(self):
        discover()
        with pytest.raises(ScenarioValidationError) as err:
            REGISTRY.register("cache", "lru", object())
        assert "already registered" in str(err.value)

    def test_example_params_materialise_against_context(self):
        discover()
        params = REGISTRY.get("adversary", "subset-flood").example_params(CTX)
        assert params == {"x": SMALL.c + 1}

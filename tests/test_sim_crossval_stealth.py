"""Tests for repro.sim.crossval and the stealth experiment driver."""

import pytest

from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError
from repro.experiments.stealth import run_stealth_sweep
from repro.sim.crossval import CrossValidation, cross_validate


class TestCrossValidate:
    def test_engines_agree_on_small_system(self):
        params = SystemParameters(n=20, m=500, c=10, d=3, rate=5000.0)
        report = cross_validate(
            params, x=100, analytic_trials=15, event_trials=3,
            queries_per_trial=20_000, seed=4,
        )
        assert report.agrees(tolerance=0.3), report.describe()
        assert report.x == 100

    def test_relative_gap_computation(self):
        report = CrossValidation(
            x=5, analytic_mean=2.0, eventsim_mean=2.2, eventsim_std=0.1, drop_rate=0.0
        )
        assert report.relative_gap == pytest.approx(0.1)
        assert report.agrees(tolerance=0.15)
        assert not report.agrees(tolerance=0.05)

    def test_zero_analytic_edge(self):
        both_zero = CrossValidation(
            x=5, analytic_mean=0.0, eventsim_mean=0.0, eventsim_std=0.0, drop_rate=0.0
        )
        assert both_zero.relative_gap == 0.0
        mismatch = CrossValidation(
            x=5, analytic_mean=0.0, eventsim_mean=1.0, eventsim_std=0.0, drop_rate=0.0
        )
        assert mismatch.relative_gap == float("inf")

    def test_describe(self):
        report = CrossValidation(
            x=5, analytic_mean=2.0, eventsim_mean=2.1, eventsim_std=0.1, drop_rate=0.01
        )
        assert "x=5" in report.describe()

    def test_validates_x(self):
        params = SystemParameters(n=10, m=100, c=5, d=2, rate=100.0)
        with pytest.raises(ConfigurationError):
            cross_validate(params, x=101)


class TestStealthSweep:
    def test_shape_and_findings(self):
        result = run_stealth_sweep(
            trials=5, seed=2, fractions=(0.0, 0.3, 1.0), n=100, m=5000
        )
        fractions = result.column("attack_fraction")
        gains = result.column("gain")
        assert fractions == [0.0, 0.3, 1.0]
        # Damage grows with the attack share.
        assert gains[-1] > gains[0]
        # The pure flood reproduces the Case-1 gain n/(c+1).
        assert gains[-1] == pytest.approx(100 / result.config["flood_x"], rel=0.15)

    def test_blended_fingerprint_is_benign(self):
        result = run_stealth_sweep(
            trials=3, seed=2, fractions=(0.3,), n=100, m=5000
        )
        assert result.column("verdict") == ["skewed-benign"]

    def test_pure_flood_is_flagged(self):
        result = run_stealth_sweep(trials=3, seed=2, fractions=(1.0,), n=100, m=5000)
        assert result.column("verdict") == ["uniform-flood"]

    def test_notes_present(self):
        result = run_stealth_sweep(trials=3, seed=2, fractions=(0.0, 1.0), n=100, m=5000)
        assert result.notes

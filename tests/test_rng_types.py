"""Tests for repro.rng and repro.types."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rng import DEFAULT_SEED, RngFactory, as_generator
from repro.types import LoadReport, LoadVector


class TestRngFactory:
    def test_same_triple_same_stream(self):
        f = RngFactory(1)
        a = f.generator("x", trial=0).integers(0, 1 << 30, size=5)
        b = RngFactory(1).generator("x", trial=0).integers(0, 1 << 30, size=5)
        assert (a == b).all()

    def test_different_labels_differ(self):
        f = RngFactory(1)
        a = f.generator("alpha").integers(0, 1 << 30, size=8)
        b = f.generator("beta").integers(0, 1 << 30, size=8)
        assert not (a == b).all()

    def test_different_trials_differ(self):
        f = RngFactory(1)
        a = f.generator("x", trial=0).integers(0, 1 << 30, size=8)
        b = f.generator("x", trial=1).integers(0, 1 << 30, size=8)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngFactory(1).generator("x").integers(0, 1 << 30, size=8)
        b = RngFactory(2).generator("x").integers(0, 1 << 30, size=8)
        assert not (a == b).all()

    def test_spawn_namespacing(self):
        f = RngFactory(1)
        child = f.spawn("sub")
        a = child.generator("x").integers(0, 1 << 30, size=8)
        b = f.generator("x").integers(0, 1 << 30, size=8)
        assert not (a == b).all()
        assert child.seed == f.seed

    def test_negative_trial_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(1).generator("x", trial=-1)


class TestAsGenerator:
    def test_none_uses_default_seed(self):
        a = as_generator(None).integers(0, 1 << 30, size=4)
        b = RngFactory(DEFAULT_SEED).generator("default").integers(0, 1 << 30, size=4)
        assert (a == b).all()

    def test_int_seed(self):
        a = as_generator(5, "lbl").integers(0, 1 << 30, size=4)
        b = as_generator(5, "lbl").integers(0, 1 << 30, size=4)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_factory_derives(self):
        f = RngFactory(3)
        a = as_generator(f, "lbl").integers(0, 1 << 30, size=4)
        b = f.generator("lbl").integers(0, 1 << 30, size=4)
        assert (a == b).all()

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_generator("a string")


class TestLoadVector:
    def test_derived_quantities(self):
        v = LoadVector(loads=np.array([10.0, 30.0, 20.0]), total_rate=90.0)
        assert v.n_nodes == 3
        assert v.max_load == 30.0
        assert v.backend_rate == pytest.approx(60.0)
        assert v.even_split == pytest.approx(30.0)
        assert v.normalized_max == pytest.approx(1.0)

    def test_cache_absorption_shows_in_gain(self):
        # Offered 90 qps, only 30 reached the back end: gain can be < 1.
        v = LoadVector(loads=np.array([10.0, 10.0, 10.0]), total_rate=90.0)
        assert v.normalized_max == pytest.approx(1.0 / 3.0)

    def test_percentile(self):
        v = LoadVector(loads=np.linspace(0, 100, 101), total_rate=1.0)
        assert v.percentile(50) == pytest.approx(50.0)

    def test_zero_rate_gain(self):
        v = LoadVector(loads=np.array([0.0, 0.0]), total_rate=0.0)
        assert v.normalized_max == 0.0

    def test_rejects_negative_loads(self):
        with pytest.raises(ConfigurationError):
            LoadVector(loads=np.array([-1.0]), total_rate=1.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            LoadVector(loads=np.array([]), total_rate=1.0)


class TestLoadReport:
    def test_aggregates(self):
        report = LoadReport(
            normalized_max_per_trial=np.array([1.0, 3.0, 2.0]),
            total_rate=100.0,
            n_nodes=10,
        )
        assert report.trials == 3
        assert report.worst_case == 3.0
        assert report.mean == pytest.approx(2.0)
        assert report.std == pytest.approx(1.0)

    def test_single_trial_std_zero(self):
        report = LoadReport(
            normalized_max_per_trial=np.array([1.5]), total_rate=1.0, n_nodes=2
        )
        assert report.std == 0.0

    def test_metadata_kept(self):
        report = LoadReport(
            normalized_max_per_trial=np.array([1.0]),
            total_rate=1.0,
            n_nodes=2,
            metadata={"x": 42},
        )
        assert report.metadata["x"] == 42

    def test_rejects_empty_trials(self):
        with pytest.raises(ConfigurationError):
            LoadReport(normalized_max_per_trial=np.array([]), total_rate=1.0, n_nodes=2)

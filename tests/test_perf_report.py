"""HTML perf report and the shared dashboard layout helpers."""

from repro.obs.dashboard import fmt, html_page, html_table, svg_sparkline
from repro.perf.report import render_report, write_report
from repro.perf.schema import RunManifest


def make_manifest(bench="demo", engine=1.0, **overrides):
    base = dict(
        bench=bench,
        smoke=True,
        ok=True,
        engine_seconds=engine,
        export_seconds=0.25,
        wall_seconds=engine + 0.25,
        events=1000,
        balls=4000,
        spans={
            bench: {"count": 1, "total_seconds": engine + 0.25,
                    "mean_seconds": engine + 0.25},
            f"{bench}/engine": {"count": 1, "total_seconds": engine,
                                "mean_seconds": engine},
            f"{bench}/export": {"count": 1, "total_seconds": 0.25,
                                "mean_seconds": 0.25},
        },
        tracemalloc_peak_bytes=2 * 1024 * 1024,
    )
    base.update(overrides)
    return RunManifest(**base)


class TestDashboardHelpers:
    def test_sparkline_empty(self):
        assert svg_sparkline([]) == "<span>(no data)</span>"
        assert svg_sparkline([None, float("nan")]) == "<span>(no data)</span>"

    def test_sparkline_single_point_renders_flat_line(self):
        svg = svg_sparkline([3.0])
        assert svg.startswith("<svg")
        assert "polyline" in svg

    def test_sparkline_scales_series_into_box(self):
        svg = svg_sparkline([1.0, 2.0, 3.0], width=100, height=20)
        assert 'viewBox="0 0 100 20"' in svg

    def test_html_page_skeleton(self):
        page = html_page("My title", ["<p>body</p>"])
        assert page.startswith("<!DOCTYPE html>")
        assert "My title" in page
        assert "<p>body</p>" in page

    def test_fmt_handles_none(self):
        assert fmt(None) == "-"
        assert fmt(float("nan")) == "-"

    def test_html_table(self):
        table = html_table([{"a": 1, "b": 2}], ["a", "b"])
        assert "<table>" in table and "<th>a</th>" in table


class TestPerfReport:
    def test_empty_history_renders(self):
        page = render_report([])
        assert "history is empty" in page

    def test_report_contains_all_sections(self):
        manifests = [
            make_manifest("alpha", engine=1.0),
            make_manifest("alpha", engine=2.0),
            make_manifest("beta", engine=0.5, ok=False),
        ]
        page = render_report(manifests, title="Perf smoke")
        assert "Perf smoke" in page
        assert "alpha" in page and "beta" in page
        # Sparkline over the alpha trajectory.
        assert "<svg" in page
        # Top-span table and nested-span view.
        assert "Top spans" in page
        assert "Nested spans" in page
        assert "alpha/engine" in page or "engine" in page
        # Failed checks are visible.
        assert "NO" in page
        # The throughput definition is stated (the ISSUE 5 fix).
        assert "engine" in page and "export" in page

    def test_report_escapes_bench_names(self):
        page = render_report([make_manifest("<evil>")])
        assert "<evil>" not in page
        assert "&lt;evil&gt;" in page

    def test_write_report(self, tmp_path):
        out = tmp_path / "nested" / "report.html"
        path = write_report([make_manifest()], out, title="T")
        assert path == out
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

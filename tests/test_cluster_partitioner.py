"""Tests for repro.cluster.partitioner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.partitioner import (
    ConsistentHashPartitioner,
    HashPartitioner,
    RandomTablePartitioner,
)
from repro.exceptions import ConfigurationError, PartitionError

ALL_PARTITIONERS = [
    lambda n, d: HashPartitioner(n, d, secret=b"test-secret"),
    lambda n, d: ConsistentHashPartitioner(n, d, vnodes=32, secret=b"test-secret"),
    lambda n, d: RandomTablePartitioner(n, d, m=1000, seed=5),
]


@pytest.mark.parametrize("factory", ALL_PARTITIONERS)
class TestPartitionerContract:
    def test_group_size_and_distinctness(self, factory):
        part = factory(20, 3)
        for key in range(50):
            group = part.replica_group(key)
            assert group.shape == (3,)
            assert len(set(group.tolist())) == 3
            assert group.min() >= 0 and group.max() < 20

    def test_deterministic_per_key(self, factory):
        part = factory(20, 3)
        for key in (0, 7, 999):
            a = part.replica_group(key)
            b = part.replica_group(key)
            assert (a == b).all()

    def test_vectorised_matches_scalar(self, factory):
        part = factory(15, 2)
        keys = np.arange(40)
        groups = part.replica_groups(keys)
        assert groups.shape == (40, 2)
        for i, key in enumerate(keys):
            assert (groups[i] == part.replica_group(int(key))).all()

    def test_d_equals_one(self, factory):
        part = factory(10, 1)
        assert part.replica_group(3).shape == (1,)

    def test_rejects_bad_construction(self, factory):
        with pytest.raises(ConfigurationError):
            factory(0, 1)
        with pytest.raises(ConfigurationError):
            factory(5, 6)


class TestHashPartitioner:
    def test_secret_changes_mapping(self):
        a = HashPartitioner(50, 3, secret=b"alpha")
        b = HashPartitioner(50, 3, secret=b"beta")
        differs = any(
            not np.array_equal(a.replica_group(k), b.replica_group(k))
            for k in range(20)
        )
        assert differs

    def test_roughly_uniform_first_replica(self):
        part = HashPartitioner(10, 1, secret=b"u")
        groups = part.replica_groups(np.arange(5000))
        counts = np.bincount(groups[:, 0], minlength=10)
        assert counts.min() > 350  # expectation 500, generous band
        assert counts.max() < 650

    def test_rejects_non_bytes_secret(self):
        with pytest.raises(ConfigurationError):
            HashPartitioner(10, 2, secret="stringly")


class TestConsistentHashPartitioner:
    def test_vnodes_property(self):
        part = ConsistentHashPartitioner(5, 2, vnodes=16)
        assert part.vnodes == 16

    def test_rejects_zero_vnodes(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashPartitioner(5, 2, vnodes=0)

    def test_node_removal_stability(self):
        """The consistent-hashing property: mappings computed on rings
        that share vnode positions mostly agree (we verify coverage is
        complete instead — each ring walk reaches d distinct owners)."""
        part = ConsistentHashPartitioner(8, 3, vnodes=8, secret=b"ring")
        seen_nodes = set()
        for key in range(200):
            seen_nodes.update(part.replica_group(key).tolist())
        assert seen_nodes == set(range(8))


class TestRandomTablePartitioner:
    def test_domain_enforced(self):
        part = RandomTablePartitioner(10, 2, m=100, seed=1)
        with pytest.raises(PartitionError):
            part.replica_group(100)
        with pytest.raises(PartitionError):
            part.replica_groups(np.array([5, 101]))

    def test_seeded_reproducibility(self):
        a = RandomTablePartitioner(10, 3, m=50, seed=9)
        b = RandomTablePartitioner(10, 3, m=50, seed=9)
        assert (a.replica_groups(np.arange(50)) == b.replica_groups(np.arange(50))).all()

    def test_different_seeds_differ(self):
        a = RandomTablePartitioner(10, 3, m=50, seed=9)
        b = RandomTablePartitioner(10, 3, m=50, seed=10)
        assert not (
            a.replica_groups(np.arange(50)) == b.replica_groups(np.arange(50))
        ).all()

    @given(
        n=st.integers(min_value=2, max_value=40),
        d=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_groups_always_valid(self, n, d, seed):
        """Every generated group is d distinct in-range nodes."""
        d = min(d, n)
        part = RandomTablePartitioner(n, d, m=30, seed=seed)
        groups = part.replica_groups(np.arange(30))
        for row in groups:
            assert len(set(row.tolist())) == d
            assert row.min() >= 0 and row.max() < n

"""Tests for repro.core.bounds (Eqs. (5)-(10))."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    PAPER_K,
    balls_in_bins_key_bound,
    expected_max_load_bound,
    fold_constant_k,
    loglog_over_logd,
    normalized_max_load_bound,
)
from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError


class TestLogLogOverLogD:
    def test_paper_value(self):
        # log log 1000 / log 3 with natural logs.
        expected = math.log(math.log(1000)) / math.log(3)
        assert loglog_over_logd(1000, 3) == pytest.approx(expected)

    def test_small_constant_for_realistic_clusters(self):
        # The paper claims log log n / log d < 2 for n < 1e5, d >= 3;
        # that holds exactly in base 10, while with natural logs (the
        # Berenbrink et al. convention we use) it tops out at ~2.22 —
        # either way an O(1) constant, which is the substance.
        for n in (10, 100, 1000):
            assert loglog_over_logd(n, 3) < 2.0
        assert loglog_over_logd(99_999, 3) < 2.25

    def test_decreases_with_d(self):
        assert loglog_over_logd(1000, 4) < loglog_over_logd(1000, 2)

    def test_small_n_clamps_to_zero(self):
        assert loglog_over_logd(2, 2) == 0.0
        assert loglog_over_logd(1, 2) == 0.0

    def test_rejects_d_one(self):
        with pytest.raises(ConfigurationError):
            loglog_over_logd(1000, 1)

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            loglog_over_logd(0, 2)


class TestFoldConstantK:
    def test_adds_k_prime(self):
        base = fold_constant_k(1000, 3)
        assert fold_constant_k(1000, 3, k_prime=0.5) == pytest.approx(base + 0.5)

    def test_paper_k_is_optimistic_for_its_own_setting(self):
        # The figures fold k = 1.2 while the loglog term alone is 1.76 —
        # recorded here so the discrepancy is a documented fact.
        assert fold_constant_k(1000, 3) > PAPER_K


class TestKeyBound:
    def test_zero_balls(self):
        assert balls_in_bins_key_bound(0, 100, 3) == 0.0

    def test_average_plus_gap(self):
        bound = balls_in_bins_key_bound(1000, 100, 3, k_prime=0.0)
        assert bound == pytest.approx(10.0 + loglog_over_logd(100, 3))

    def test_rejects_negative_balls(self):
        with pytest.raises(ConfigurationError):
            balls_in_bins_key_bound(-1, 100, 3)


class TestExpectedMaxLoadBound:
    def test_fully_cached_attack_is_zero(self, small_params):
        # x <= c: all queried keys hit the cache.
        assert expected_max_load_bound(small_params, small_params.c, k=1.0) == 0.0

    def test_matches_hand_computation(self, paper_params):
        x = 10_000
        k = 1.2
        expected = ((x - 200) / 1000 + k) * (1e5 / (x - 1))
        assert expected_max_load_bound(paper_params, x, k=k) == pytest.approx(expected)

    def test_rejects_x_above_m(self, small_params):
        with pytest.raises(ConfigurationError):
            expected_max_load_bound(small_params, small_params.m + 1)

    def test_rejects_x_below_two(self, small_params):
        with pytest.raises(ConfigurationError):
            expected_max_load_bound(small_params, 1)


class TestNormalizedBound:
    def test_equation_ten_form(self, paper_params):
        x = 5000
        k = 1.2
        expected = 1.0 + (1 - 200 + 1000 * k) / (x - 1)
        assert normalized_max_load_bound(paper_params, x, k=k) == pytest.approx(expected)

    def test_sign_split_small_cache(self, paper_params):
        # c = 200 < n k + 1: bound decreases in x and exceeds 1.
        b_small = normalized_max_load_bound(paper_params, 201, k=1.2)
        b_large = normalized_max_load_bound(paper_params, paper_params.m, k=1.2)
        assert b_small > b_large > 1.0

    def test_sign_split_large_cache(self):
        params = SystemParameters(n=1000, m=100_000, c=2000, d=3, rate=1e5)
        # c = 2000 > n k + 1: bound increases in x and stays below 1.
        b_small = normalized_max_load_bound(params, 2001, k=1.2)
        b_large = normalized_max_load_bound(params, params.m, k=1.2)
        assert b_small < b_large < 1.0

    def test_consistent_with_rate_bound(self, paper_params):
        x = 777
        ratio = expected_max_load_bound(paper_params, x, k=1.2) / paper_params.even_split
        assert normalized_max_load_bound(paper_params, x, k=1.2) == pytest.approx(ratio)

    @given(
        x=st.integers(min_value=2, max_value=100_000),
        c=st.integers(min_value=0, max_value=5000),
        k=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bound_always_exceeds_even_split_below_critical(self, x, c, k):
        """Property: with 1 - c + n k > 0 the bound is > 1 for all x."""
        params = SystemParameters(n=1000, m=100_000, c=c, d=3, rate=1e5)
        if x <= c:
            return
        margin = 1 - c + 1000 * k
        bound = normalized_max_load_bound(params, x, k=k)
        if margin > 1e-6:
            assert bound > 1.0
        elif margin <= 0:
            assert bound <= 1.0
        else:  # hairline boundary: only float-safe weak inequality holds
            assert bound == pytest.approx(1.0, abs=1e-9) or bound > 1.0

"""Property and unit tests for the cache-tree hierarchy substrate.

Three properties pin the DistCache mechanics:

* **independence** — the layered partitioner derives every layer's
  keyed hash from ``(seed, layer)``, so the same key's assignments are
  pairwise independent across layers (empirical joint frequencies
  factorise) and deterministic for a fixed seed;
* **conservation** — per layer, probes split exactly into hits and
  misses, and the probe counts of consecutive cascade layers telescope
  (``entered[l+1] == entered[l] - hits[l]``);
* **bounded load** — in the paper regime (every flooded key resident,
  so the two-choice selection rather than residency churn decides who
  serves), the busiest shard of every layer stays within
  :func:`repro.core.bounds.distcache_max_load_bound`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheTree, LRUCache, make_cache
from repro.cache.tree import _build_tree
from repro.cluster.hierarchy import (
    CascadeLayerSelection,
    LayeredPartitioner,
    TwoChoiceLayerSelection,
    make_layer_selection,
)
from repro.core.bounds import distcache_max_load_bound
from repro.core.notation import SystemParameters
from repro.exceptions import (
    CacheError,
    ConfigurationError,
    ScenarioValidationError,
)
from repro.scenario.build import BuildContext


def _ctx(c=10, seed=0):
    return BuildContext(
        params=SystemParameters(n=20, m=500, c=c, d=3, rate=2000.0),
        seed=seed,
    )


class TestLayeredPartitioner:
    def test_deterministic_per_seed(self):
        a = LayeredPartitioner((2, 3), seed=7)
        b = LayeredPartitioner((2, 3), seed=7)
        keys = np.arange(200)
        for layer in (0, 1):
            assert (
                a.assign_many(layer, keys) == b.assign_many(layer, keys)
            ).all()
        assert a.assign(42) == b.assign(42)

    def test_assign_matches_assign_many(self):
        partitioner = LayeredPartitioner((4, 2), seed=3)
        keys = np.arange(100)
        per_layer = [partitioner.assign_many(layer, keys) for layer in (0, 1)]
        for key in range(100):
            assert partitioner.assign(key) == (
                per_layer[0][key], per_layer[1][key],
            )

    def test_layers_use_distinct_secrets(self):
        partitioner = LayeredPartitioner((2, 2), seed=7)
        keys = np.arange(2000)
        layer0 = partitioner.assign_many(0, keys)
        layer1 = partitioner.assign_many(1, keys)
        assert (layer0 != layer1).any()

    def test_seeds_use_distinct_secrets(self):
        keys = np.arange(2000)
        a = LayeredPartitioner((2,), seed=1).assign_many(0, keys)
        b = LayeredPartitioner((2,), seed=2).assign_many(0, keys)
        assert (a != b).any()

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_pairwise_independence_across_layers(self, seed):
        """Joint assignment frequencies factorise into the marginals.

        With 4000 keys into 2x2 cells the binomial std of a cell
        frequency is ~0.0068; a 0.04 tolerance is >5 sigma, so a seed
        that *derived* layer 1's hash from layer 0's (perfectly
        correlated cells at 0.5/0) fails while honest independence
        passes for every seed.
        """
        partitioner = LayeredPartitioner((2, 2), seed=seed)
        keys = np.arange(4000)
        layer0 = partitioner.assign_many(0, keys)
        layer1 = partitioner.assign_many(1, keys)
        p0 = np.bincount(layer0, minlength=2) / keys.size
        p1 = np.bincount(layer1, minlength=2) / keys.size
        for i in (0, 1):
            for j in (0, 1):
                joint = float(np.mean((layer0 == i) & (layer1 == j)))
                assert abs(joint - p0[i] * p1[j]) < 0.04, (seed, i, j)


class TestLayerSelection:
    def test_cascade_is_layer_order(self):
        selection = CascadeLayerSelection()
        assert selection.probe_order((1, 0, 2), [[0, 5], [9], [0, 0, 3]]) == (
            0, 1, 2,
        )

    def test_two_choice_prefers_less_served_candidate(self):
        selection = TwoChoiceLayerSelection()
        served = [[10, 0], [3]]
        # Key's candidates: edge shard 0 (served 10) vs aggregate shard
        # 0 (served 3): probe the aggregate first.
        assert selection.probe_order((0, 0), served) == (1, 0)
        # A key on the cold edge shard keeps edge-first order (tie and
        # load both favour it; ties break on layer index).
        assert selection.probe_order((1, 0), served) == (0, 1)

    def test_two_choice_cold_start_is_cascade(self):
        selection = TwoChoiceLayerSelection()
        assert selection.probe_order((0, 0), [[0, 0], [0]]) == (0, 1)

    def test_registry_names(self):
        assert isinstance(make_layer_selection("cascade"), CascadeLayerSelection)
        assert isinstance(
            make_layer_selection("two-choice"), TwoChoiceLayerSelection
        )


class TestTreeValidation:
    def test_empty_layers_rejected(self):
        with pytest.raises(CacheError):
            CacheTree([])
        with pytest.raises(CacheError):
            CacheTree([[LRUCache(2)], []])

    def test_non_cache_shard_rejected(self):
        with pytest.raises(CacheError):
            CacheTree([[LRUCache(2), "nope"]])

    def test_partitioner_width_mismatch_rejected(self):
        with pytest.raises(CacheError):
            CacheTree(
                [[LRUCache(2)]], partitioner=LayeredPartitioner((2,)),
            )

    def test_capacity_is_total(self):
        tree = CacheTree([[LRUCache(3), LRUCache(4)], [LRUCache(5)]])
        assert tree.capacity == 12
        assert tree.depth == 2
        assert tree.widths == (2, 1)
        assert not tree.degenerate

    def test_builder_validates_spec(self):
        with pytest.raises(ScenarioValidationError):
            _build_tree(_ctx(), layers=None)
        with pytest.raises(ScenarioValidationError):
            _build_tree(_ctx(), layers=["lru"])
        with pytest.raises(ScenarioValidationError):
            _build_tree(_ctx(), layers=[{"shards": 2, "nodes": 3}])
        with pytest.raises(ScenarioValidationError):
            _build_tree(_ctx(), layers=[{"shards": 0}])

    def test_builder_defaults(self):
        tree = _build_tree(_ctx(c=6), layers=[{"shards": 2}, {"shards": 1}])
        assert tree.widths == (2, 1)
        # Shard capacity defaults to the scenario's c, policy to lru.
        assert all(
            shard.capacity == 6 and shard.POLICY == "lru"
            for layer in tree.layers
            for shard in layer
        )
        assert isinstance(tree.selection, CascadeLayerSelection)
        assert tree.partitioner.seed == 0

    def test_bound_validation(self):
        with pytest.raises(ConfigurationError):
            distcache_max_load_bound(10, 0, 5)
        with pytest.raises(ConfigurationError):
            distcache_max_load_bound(-1, 2, 5)
        assert distcache_max_load_bound(0, 2, 5) == 0.0
        assert distcache_max_load_bound(10, 2, 0) == 0.0
        assert distcache_max_load_bound(10, 1, 5) == 10.0


def _random_tree(widths, capacity, selection, seed):
    layers = [
        [make_cache("lru", capacity) for _ in range(width)]
        for width in widths
    ]
    return CacheTree(
        layers,
        partitioner=LayeredPartitioner(tuple(widths), seed=seed),
        selection=make_layer_selection(selection),
    )


@st.composite
def _tree_configs(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    widths = tuple(
        draw(st.integers(min_value=1, max_value=4)) for _ in range(depth)
    )
    capacity = draw(st.integers(min_value=2, max_value=12))
    selection = draw(st.sampled_from(["cascade", "two-choice"]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    m = draw(st.integers(min_value=8, max_value=200))
    n_accesses = draw(st.integers(min_value=1, max_value=1500))
    return widths, capacity, selection, seed, m, n_accesses


class TestConservation:
    @given(_tree_configs())
    @settings(max_examples=25, deadline=None)
    def test_probes_split_into_hits_and_misses(self, config):
        widths, capacity, selection, seed, m, n_accesses = config
        tree = _random_tree(widths, capacity, selection, seed)
        rng = np.random.default_rng(seed)
        for key in rng.integers(0, m, size=n_accesses):
            hit = tree.access(int(key))
            assert (tree.last_hit is not None) is hit
        assert tree.stats.hits + tree.stats.misses == n_accesses
        assert sum(tree.layer_hits) == tree.stats.hits
        for layer, shards in enumerate(tree.layers):
            probed = sum(s.stats.hits + s.stats.misses for s in shards)
            assert probed == tree.entered[layer]
            # Probing stops at the first hit, so shard-level hits are
            # exactly the hits the tree attributes to this layer...
            assert sum(s.stats.hits for s in shards) == tree.layer_hits[layer]
            # ...shard by shard.
            assert tuple(s.stats.hits for s in shards) == (
                tree.shard_served[layer]
            )

    @given(_tree_configs())
    @settings(max_examples=25, deadline=None)
    def test_cascade_layers_telescope(self, config):
        widths, capacity, _, seed, m, n_accesses = config
        tree = _random_tree(widths, capacity, "cascade", seed)
        rng = np.random.default_rng(seed + 1)
        for key in rng.integers(0, m, size=n_accesses):
            tree.access(int(key))
        assert tree.entered[0] == n_accesses
        for layer in range(tree.depth - 1):
            assert tree.entered[layer + 1] == (
                tree.entered[layer] - tree.layer_hits[layer]
            )


@pytest.mark.slow
class TestDistCacheBound:
    """The per-layer max-load bound in the paper's regime.

    The bound is a with-high-probability statement for keys >> shards
    (DistCache's own setting).  Outside that regime — a handful of keys
    over several shards — binomial key-placement imbalance can starve a
    shard and spill past the Theta(1)-style slack, which is exactly why
    the monitor treats ``within_bound`` as a diagnostic rather than an
    invariant (and why its violation under a shard-targeted flood is
    the detection signal).  The strategy therefore samples key counts
    large enough that every layer's starvation z-score clears ~3.5
    sigma; an MC sweep of 500 configs from this space showed zero
    violations (see docs/HIERARCHY.md).
    """

    @st.composite
    def _bound_configs(draw):
        widths = draw(st.sampled_from([(2, 1), (2, 2), (3, 3)]))
        x = draw(st.integers(min_value=110, max_value=250))
        seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        return widths, x, seed

    @given(_bound_configs())
    @settings(max_examples=15, deadline=None)
    def test_two_choice_layers_within_bound(self, config):
        widths, x, seed = config
        # Every shard can hold the whole flood: after the first pass all
        # probes hit, and the two-choice selection alone decides which
        # layer serves — the process the bound is stated for.
        tree = _random_tree(widths, x, "two-choice", seed)
        rng = np.random.default_rng(seed)
        layer_keys = [set() for _ in tree.widths]
        for key in rng.integers(0, x, size=6000):
            if tree.access(int(key)):
                layer, _ = tree.last_hit
                layer_keys[layer].add(int(key))
        for layer, width in enumerate(tree.widths):
            hits = tree.layer_hits[layer]
            bound = distcache_max_load_bound(
                hits, width, len(layer_keys[layer]), k_prime=0.75
            )
            assert max(tree.shard_served[layer]) <= bound, (
                config, layer, tree.shard_served[layer], bound,
            )

"""Golden scenario determinism suite.

Three pinned scenario specs plus one sweep campaign live under
``tests/golden/scenarios/``.  Each must produce *bit-identical* results
serial vs ``workers=4`` — the engines seed every trial explicitly, so
the process pool is a pure wall-clock optimisation — and both must
match the committed ``expected.json`` exactly (regenerate with
``PYTHONPATH=src python tests/golden/make_golden.py`` only when a
change is *intended* to move reproduced numbers).

The campaign half additionally locks the manifest layer: schema
validation hard-fails on drift, the deterministic view strips exactly
the provenance fields, and the written manifest + HTML report are
self-consistent.
"""

import json
from pathlib import Path

import pytest

pytest.importorskip("yaml", reason="golden scenario fixtures are YAML")

from repro.exceptions import ScenarioValidationError
from repro.scenario import load_spec, run_campaign, run_scenario
from repro.scenario.manifest import (
    deterministic_view,
    validate_campaign_manifest,
)
from repro.scenario.spec import CampaignSpec, ScenarioSpec

SCENARIO_DIR = Path(__file__).parent / "golden" / "scenarios"
EXPECTED = json.loads((SCENARIO_DIR / "expected.json").read_text())

#: Wired explicitly so an unpinned fixture file fails the census test
#: below instead of silently going untested.
SCENARIO_FILES = (
    "chaos-on.yaml",
    "paper-default.yaml",
    "stealth-adversary.yaml",
    "tree-paper-default.yaml",
    "tree-stealth-shard.yaml",
)
CAMPAIGN_FILES = ("sweep-grid.yaml", "tree-sweep.yaml")


@pytest.fixture(autouse=True)
def _full_fidelity(monkeypatch):
    """The pinned numbers are full runs; never compare under smoke caps."""
    monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)


def _normalize(stats: dict) -> dict:
    """JSON round trip: compare what a manifest would actually store."""
    return json.loads(json.dumps(stats, sort_keys=True, allow_nan=False))


class TestGoldenScenarios:
    def test_fixture_census(self):
        on_disk = {p.name for p in SCENARIO_DIR.glob("*.yaml")}
        assert on_disk == set(SCENARIO_FILES) | set(CAMPAIGN_FILES)
        assert set(EXPECTED["scenarios"]) == set(SCENARIO_FILES)
        assert set(EXPECTED["campaigns"]) == set(CAMPAIGN_FILES)

    @pytest.mark.parametrize("fixture", SCENARIO_FILES)
    def test_serial_matches_workers4_and_pinned(self, fixture):
        spec = load_spec(SCENARIO_DIR / fixture)
        assert isinstance(spec, ScenarioSpec)
        serial = run_scenario(spec)
        parallel = run_scenario(spec, workers=4)
        assert serial.stats == parallel.stats, (
            f"{fixture}: stats differ between serial and workers=4"
        )
        assert _normalize(serial.stats) == EXPECTED["scenarios"][fixture], (
            f"{fixture}: stats moved off the pinned golden values — if "
            "intended, regenerate tests/golden/scenarios/expected.json"
        )


class TestGoldenCampaign:
    @pytest.mark.parametrize("fixture", CAMPAIGN_FILES)
    def test_sweep_is_worker_invariant_and_pinned(self, fixture, tmp_path):
        campaign = load_spec(SCENARIO_DIR / fixture)
        assert isinstance(campaign, CampaignSpec)
        serial = run_campaign(campaign, out_dir=tmp_path)
        parallel = run_campaign(campaign, workers=4)

        view = deterministic_view(serial.manifest)
        assert view == deterministic_view(parallel.manifest)
        assert view == EXPECTED["campaigns"][fixture]

        # Provenance differs per run, the deterministic view never does.
        assert serial.manifest["workers"] != parallel.manifest["workers"]

        # The written artifacts: manifest validates after a disk round
        # trip; the report names every grid cell.
        on_disk = json.loads(serial.manifest_path.read_text())
        assert validate_campaign_manifest(on_disk) == on_disk
        html = serial.report_path.read_text()
        assert len(html) > 200
        for outcome in serial.outcomes:
            assert outcome.spec.name in html


class TestManifestContract:
    def _manifest(self):
        campaign = load_spec(SCENARIO_DIR / CAMPAIGN_FILES[0])
        scenarios = campaign.expand()
        from repro.scenario.manifest import campaign_manifest

        return campaign_manifest(
            campaign,
            list(scenarios),
            [{"engine": s.engine.kind} for s in scenarios],
            workers=1,
        )

    def test_schema_drift_hard_fails(self):
        manifest = self._manifest()
        manifest["schema"] = 999
        with pytest.raises(ScenarioValidationError) as err:
            validate_campaign_manifest(manifest)
        assert err.value.path == "manifest.schema"

    def test_missing_field_hard_fails(self):
        manifest = self._manifest()
        del manifest["grid_shape"]
        with pytest.raises(ScenarioValidationError) as err:
            validate_campaign_manifest(manifest)
        assert err.value.path == "manifest.grid_shape"

    def test_bool_workers_rejected(self):
        manifest = self._manifest()
        manifest["workers"] = True
        with pytest.raises(ScenarioValidationError):
            validate_campaign_manifest(manifest)

    def test_deterministic_view_strips_provenance_only(self):
        view = deterministic_view(self._manifest())
        assert set(view) == {
            "schema", "campaign", "spec", "grid_shape", "scenarios",
        }

    def test_smoke_mode_caps_trials_and_queries(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        spec = load_spec(SCENARIO_DIR / "paper-default.yaml")
        outcome = run_scenario(spec)
        assert outcome.stats["trials"] == 3  # capped from the spec's 4
        assert outcome.spec.queries == 2000  # already at the cap

"""Tests for repro.cluster.cluster (the facade)."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.partitioner import HashPartitioner
from repro.cluster.selection import RoundRobinSpreading
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_default_partitioner_needs_m(self):
        with pytest.raises(ConfigurationError):
            Cluster(n=10, d=2)

    def test_default_build(self):
        cluster = Cluster(n=10, d=2, m=100, seed=1)
        assert cluster.n == 10
        assert cluster.d == 2
        assert len(cluster.nodes) == 10
        assert cluster.selection.name == "least-loaded"

    def test_custom_partitioner(self):
        part = HashPartitioner(8, 3, secret=b"s")
        cluster = Cluster(n=8, d=3, partitioner=part)
        assert cluster.partitioner is part

    def test_mismatched_partitioner_rejected(self):
        part = HashPartitioner(8, 3, secret=b"s")
        with pytest.raises(ConfigurationError):
            Cluster(n=9, d=3, partitioner=part)
        with pytest.raises(ConfigurationError):
            Cluster(n=8, d=2, partitioner=part)

    def test_custom_selection(self):
        cluster = Cluster(n=5, d=2, m=50, selection=RoundRobinSpreading())
        assert cluster.selection.name == "round-robin"


class TestApplyRates:
    def test_mapping_input(self):
        cluster = Cluster(n=10, d=2, m=100, seed=3)
        loads = cluster.apply_rates({1: 5.0, 2: 7.0}, total_rate=20.0)
        assert loads.backend_rate == pytest.approx(12.0)
        assert loads.total_rate == 20.0
        assert loads.n_nodes == 10

    def test_array_input(self):
        cluster = Cluster(n=10, d=2, m=100, seed=3)
        keys = np.array([0, 5, 9])
        rates = np.array([1.0, 2.0, 3.0])
        loads = cluster.apply_rates((keys, rates))
        assert loads.backend_rate == pytest.approx(6.0)
        assert loads.total_rate == pytest.approx(6.0)  # defaults to sum

    def test_mismatched_lengths_rejected(self):
        cluster = Cluster(n=10, d=2, m=100, seed=3)
        with pytest.raises(ConfigurationError):
            cluster.apply_rates((np.array([1, 2]), np.array([1.0])))

    def test_load_lands_on_replica_group(self):
        cluster = Cluster(n=10, d=3, m=100, seed=3)
        loads = cluster.apply_rates({42: 9.0})
        group = set(cluster.replica_group(42).tolist())
        hot = set(np.nonzero(loads.loads)[0].tolist())
        assert hot <= group
        assert loads.max_load == pytest.approx(9.0)

    def test_accounts_reflect_last_run(self):
        cluster = Cluster(n=4, d=2, m=10, seed=3)
        loads = cluster.apply_rates({0: 4.0})
        accounts = cluster.accounts()
        assert sum(a.query_rate for a in accounts) == pytest.approx(4.0)
        assert max(a.query_rate for a in accounts) == pytest.approx(loads.max_load)

    def test_saturated_nodes_with_capacity(self):
        cluster = Cluster(n=4, d=1, m=10, node_capacity=5.0, seed=3)
        cluster.apply_rates({0: 10.0})
        assert len(cluster.saturated_nodes()) == 1

    def test_reproducible_given_seed(self):
        a = Cluster(n=10, d=3, m=100, seed=11).apply_rates({7: 3.0})
        b = Cluster(n=10, d=3, m=100, seed=11).apply_rates({7: 3.0})
        assert (a.loads == b.loads).all()

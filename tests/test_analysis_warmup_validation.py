"""Tests for repro.analysis.warmup and repro.analysis.validation."""

import numpy as np
import pytest

from repro.analysis.validation import (
    chi_square_uniform,
    partitioner_uniformity,
    sampler_fidelity,
)
from repro.analysis.warmup import attack_window, queries_to_warm, warmup_curve
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.cache.perfect import PerfectCache
from repro.cluster.partitioner import (
    ConsistentHashPartitioner,
    HashPartitioner,
    RandomTablePartitioner,
)
from repro.exceptions import AnalysisError
from repro.workload.scan import CyclicScanDistribution
from repro.workload.zipf import ZipfDistribution


class TestWarmupCurve:
    def test_perfect_cache_is_born_warm(self):
        zipf = ZipfDistribution(1000, 1.01)
        cache = PerfectCache.from_distribution(zipf.probabilities(), 100)
        keys = zipf.sample(10_000, rng=1)
        curve = warmup_curve(cache, keys, window=1000)
        # First window already at steady state.
        assert curve[0] == pytest.approx(curve[-1], abs=0.05)

    def test_lru_warms_up(self):
        zipf = ZipfDistribution(1000, 1.2)
        cache = LRUCache(100)
        keys = zipf.sample(20_000, rng=2)
        curve = warmup_curve(cache, keys, window=500)
        # Cold start is strictly worse than steady state.
        assert curve[0] < curve[-4:].mean()

    def test_window_validation(self):
        with pytest.raises(AnalysisError):
            warmup_curve(LRUCache(4), [1, 2, 3], window=0)
        with pytest.raises(AnalysisError):
            warmup_curve(LRUCache(4), [1, 2, 3], window=10)


class TestQueriesToWarm:
    def test_lfu_warms_within_stream(self):
        zipf = ZipfDistribution(1000, 1.2)
        keys = zipf.sample(30_000, rng=3)
        report = queries_to_warm(LFUCache(100), keys, window=500)
        assert report.warmed
        assert report.queries_to_warm <= 30_000
        assert report.steady_hit_rate > 0.3

    def test_lru_never_warms_under_cyclic_scan(self):
        """The operationally scary case: under a scan the recency cache
        has no steady state to warm *to* (hit rate pinned at 0)."""
        scan = CyclicScanDistribution(m=1000, x=400)
        keys = scan.sample(20_000)
        report = queries_to_warm(LRUCache(100), keys, window=500)
        assert report.steady_hit_rate == 0.0
        assert not report.warmed

    def test_attack_window_seconds(self):
        zipf = ZipfDistribution(1000, 1.2)
        keys = zipf.sample(30_000, rng=4)
        seconds = attack_window(LFUCache(100), keys, rate=10_000.0, window=500)
        assert seconds is not None
        assert 0 < seconds <= 3.0

    def test_faster_rate_shrinks_window(self):
        zipf = ZipfDistribution(1000, 1.2)
        report = queries_to_warm(LFUCache(100), zipf.sample(30_000, rng=5), window=500)
        slow = report.seconds_at(1000.0)
        fast = report.seconds_at(100_000.0)
        assert fast < slow

    def test_validation(self):
        with pytest.raises(AnalysisError):
            queries_to_warm(LRUCache(4), list(range(5000)), target_fraction=0.0)
        report = queries_to_warm(
            LFUCache(10), ZipfDistribution(100, 1.2).sample(8000, rng=1), window=500
        )
        with pytest.raises(AnalysisError):
            report.seconds_at(0.0)


class TestChiSquareUniform:
    def test_uniform_counts_pass(self):
        counts = np.random.default_rng(1).multinomial(10_000, [0.1] * 10)
        assert chi_square_uniform(counts).passes()

    def test_skewed_counts_fail(self):
        counts = np.array([5000, 100, 100, 100, 100])
        assert not chi_square_uniform(counts).passes()

    def test_validation(self):
        with pytest.raises(AnalysisError):
            chi_square_uniform([10])
        with pytest.raises(AnalysisError):
            chi_square_uniform([0, 0])
        with pytest.raises(AnalysisError):
            chi_square_uniform([2, 2, 2])  # expected < 5


class TestPartitionerUniformity:
    KEYS = np.arange(20_000)

    @pytest.mark.parametrize(
        "partitioner",
        [
            HashPartitioner(20, 3, secret=b"validate"),
            RandomTablePartitioner(20, 3, m=20_000, seed=5),
        ],
        ids=["hash", "table"],
    )
    def test_randomized_partitioners_are_uniform(self, partitioner):
        """Assumption 1 of the paper holds exactly for the keyed-hash
        and random-table partitioners."""
        for replica in range(3):
            fit = partitioner_uniformity(partitioner, self.KEYS, replica=replica)
            assert fit.passes(), fit.describe()

    def test_ring_is_only_approximately_uniform(self):
        """A consistent-hash ring has *fixed* per-node share deviations
        of ~1/sqrt(vnodes): bounded (every node within ~25% of its fair
        share at 256 vnodes) yet statistically detectable with enough
        samples — which is exactly why the theory's random-table model
        and the deployed ring differ, and what the partitioner ablation
        bench quantifies."""
        ring = ConsistentHashPartitioner(20, 3, vnodes=256, secret=b"validate")
        groups = ring.replica_groups(self.KEYS)
        counts = np.bincount(groups[:, 0], minlength=20)
        fair = self.KEYS.size / 20
        assert counts.max() < 1.3 * fair
        assert counts.min() > 0.7 * fair
        # Detectable bias at scale: the chi-square correctly rejects.
        fit = partitioner_uniformity(ring, self.KEYS)
        assert not fit.passes()

    def test_low_vnode_ring_detectably_nonuniform(self):
        """With very few vnodes the ring's arc lengths are visibly
        unequal — the validation machinery catches real bias."""
        ring = ConsistentHashPartitioner(20, 1, vnodes=1, secret=b"biased")
        fit = partitioner_uniformity(ring, self.KEYS)
        assert not fit.passes()

    def test_replica_index_validated(self):
        part = RandomTablePartitioner(5, 2, m=100, seed=1)
        with pytest.raises(AnalysisError):
            partitioner_uniformity(part, np.arange(100), replica=2)


class TestSamplerFidelity:
    @pytest.mark.parametrize(
        "distribution",
        [
            ZipfDistribution(500, 1.01),
            CyclicScanDistribution(500, 120),  # deterministic but exact marginals
        ],
        ids=["zipf", "scan"],
    )
    def test_samplers_match_declared_probabilities(self, distribution):
        fit = sampler_fidelity(distribution, samples=48_000, seed=3)
        assert fit.passes(), fit.describe()

    def test_detects_a_broken_sampler(self):
        class Lying(ZipfDistribution):
            def sample(self, size, rng=None):  # claims Zipf, samples uniform
                from repro.rng import as_generator

                gen = as_generator(rng, "lying")
                return gen.integers(0, self.m, size=size, dtype=np.int64)

        fit = sampler_fidelity(Lying(500, 1.01), samples=48_000, seed=3)
        assert not fit.passes()

    def test_validation(self):
        with pytest.raises(AnalysisError):
            sampler_fidelity(ZipfDistribution(10, 1.0), samples=0)

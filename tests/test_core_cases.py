"""Tests for repro.core.cases (Case 1 / Case 2 analysis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import normalized_max_load_bound
from repro.core.cases import (
    critical_cache_size,
    optimal_query_count,
    plan_best_attack,
    which_case,
)
from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError


class TestCriticalCacheSize:
    def test_paper_value(self):
        # n k + 1 with the paper's folded k = 1.2 and n = 1000.
        assert critical_cache_size(1000, 3, k=1.2) == 1201

    def test_scales_linearly_in_n(self):
        assert critical_cache_size(2000, 3, k=1.2) == 2401

    def test_uses_theory_k_when_not_given(self):
        import math

        expected = math.ceil(1000 * (math.log(math.log(1000)) / math.log(3)) + 1)
        assert critical_cache_size(1000, 3) == expected

    def test_independent_of_m(self):
        # The headline scalability claim: c* does not involve m at all.
        assert critical_cache_size(500, 3, k=1.0) == 501

    def test_rejects_negative_k(self):
        with pytest.raises(ConfigurationError):
            critical_cache_size(1000, 3, k=-0.1)


class TestWhichCase:
    def test_small_cache_is_case_one(self, paper_params):
        assert which_case(paper_params, k=1.2) == 1

    def test_large_cache_is_case_two(self):
        params = SystemParameters(n=1000, m=100_000, c=2000, d=3, rate=1e5)
        assert which_case(params, k=1.2) == 2

    def test_boundary(self):
        at = SystemParameters(n=1000, m=100_000, c=1201, d=3)
        below = SystemParameters(n=1000, m=100_000, c=1200, d=3)
        assert which_case(at, k=1.2) == 2
        assert which_case(below, k=1.2) == 1


class TestOptimalQueryCount:
    def test_case_one_queries_cache_plus_one(self, paper_params):
        assert optimal_query_count(paper_params, k=1.2) == 201

    def test_case_two_queries_everything(self):
        params = SystemParameters(n=1000, m=100_000, c=2000, d=3)
        assert optimal_query_count(params, k=1.2) == 100_000

    def test_degenerate_cache_covers_key_space(self):
        params = SystemParameters(n=10, m=50, c=50, d=2)
        # Whole key space cached; x is clamped to m.
        assert optimal_query_count(params, k=0.0) == 50

    @given(
        c=st.integers(min_value=0, max_value=4000),
        k=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_optimal_x_maximises_the_bound(self, c, k):
        """Property: among all feasible x, the chosen endpoint achieves
        the maximum of Eq. (10) (the case analysis is correct)."""
        params = SystemParameters(n=1000, m=20_000, c=c, d=3, rate=1e5)
        x_star = optimal_query_count(params, k=k)
        if x_star <= params.c or x_star < 2:
            return
        best = normalized_max_load_bound(params, x_star, k=k)
        for x in (c + 1, c + 2, (c + params.m) // 2 + 1, params.m):
            if x < 2 or x <= c or x > params.m:
                continue
            assert best >= normalized_max_load_bound(params, x, k=k) - 1e-9


class TestPlanBestAttack:
    def test_case_one_plan_is_effective(self, paper_params):
        plan = plan_best_attack(paper_params, k=1.2)
        assert plan.case == 1
        assert plan.x == 201
        assert plan.effective
        assert plan.gain_bound > 1.0
        assert plan.critical_cache == 1201

    def test_case_two_plan_is_prevented(self):
        params = SystemParameters(n=1000, m=100_000, c=2000, d=3)
        plan = plan_best_attack(params, k=1.2)
        assert plan.case == 2
        assert plan.x == params.m
        assert not plan.effective
        assert plan.gain_bound <= 1.0

    def test_fully_cached_system_has_zero_gain(self):
        params = SystemParameters(n=10, m=50, c=50, d=2)
        plan = plan_best_attack(params, k=0.5)
        assert plan.gain_bound == 0.0
        assert not plan.effective

    def test_describe_mentions_case(self, paper_params):
        assert "Case 1" in plan_best_attack(paper_params, k=1.2).describe()

"""Harness contract: span separation, artifacts, registry, run_suite.

The load-bearing test here pins the ISSUE 5 fix with an injected clock:
``engine_seconds`` covers only ``run()``, the export span covers
rendering + JSON serialization, and manifest throughput divides by
engine time — export cost can never inflate reported throughput.
"""

import json
import os

import pytest

from repro.exceptions import ReproError
from repro.perf import Profiler
from repro.perf.harness import (
    SMOKE_ENV,
    BenchSpec,
    active_profiler,
    get_spec,
    register,
    run_suite,
    smoke_mode,
)
from repro.perf import harness
from repro.perf.history import load_history


class TickClock:
    def __init__(self):
        self.now = -1.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


@pytest.fixture
def clean_registry():
    """Snapshot/restore the global bench registry around a test."""
    saved = dict(harness._REGISTRY)
    harness._REGISTRY.clear()
    try:
        yield harness._REGISTRY
    finally:
        harness._REGISTRY.clear()
        harness._REGISTRY.update(saved)


def make_spec(name="demo", **kwargs) -> BenchSpec:
    defaults = dict(
        run=lambda: {"config": {"n": 5}, "value": 1},
        workload=lambda payload: {"events": 100},
        seed=11,
    )
    defaults.update(kwargs)
    return BenchSpec(name=name, **defaults)


class TestSpanSeparation:
    def test_export_time_excluded_from_engine_seconds(self, tmp_path):
        """With a +1.0-per-call clock the span arithmetic is exact:
        outer open (0), engine open (1) / close (2), export open (3) /
        close (4), outer close (5)."""
        profiler = Profiler(clock=TickClock(), trace_memory=False)
        result = make_spec().execute(
            smoke=True, profiler=profiler, directory=tmp_path, quiet=True
        )
        manifest = result.manifest
        assert manifest.engine_seconds == 1.0
        assert manifest.export_seconds == 1.0
        assert manifest.wall_seconds == 5.0
        # Throughput divides by engine time only — never wall time.
        assert manifest.events_per_second == 100.0

    def test_expensive_render_cannot_inflate_throughput(self, tmp_path):
        """A render that burns two extra clock ticks lands entirely in
        the export span; engine_seconds and throughput are unchanged."""
        clock = TickClock()

        def slow_render(payload):
            clock()
            clock()
            return "table"

        profiler = Profiler(clock=clock, trace_memory=False)
        result = make_spec(render=slow_render).execute(
            smoke=True, profiler=profiler, directory=tmp_path, quiet=True
        )
        assert result.manifest.engine_seconds == 1.0
        assert result.manifest.export_seconds == 3.0
        assert result.manifest.events_per_second == 100.0

    def test_span_paths_recorded(self, tmp_path):
        profiler = Profiler(clock=TickClock(), trace_memory=False)
        result = make_spec(name="paths").execute(
            smoke=True, profiler=profiler, directory=tmp_path, quiet=True
        )
        assert {"paths", "paths/engine", "paths/export"} <= set(
            result.manifest.spans
        )


class TestExecute:
    def test_smoke_artifacts_use_smoke_stem(self, tmp_path):
        make_spec(name="stem").execute(
            smoke=True, directory=tmp_path, quiet=True
        )
        assert (tmp_path / "stem_smoke.json").exists()
        assert (tmp_path / "stem_smoke.txt").exists()
        assert not (tmp_path / "stem.json").exists()

    def test_full_artifacts_use_plain_stem(self, tmp_path):
        make_spec(name="stem").execute(
            smoke=False, directory=tmp_path, quiet=True
        )
        assert (tmp_path / "stem.json").exists()

    def test_payload_json_gets_smoke_flag(self, tmp_path):
        make_spec(name="flagged").execute(
            smoke=True, directory=tmp_path, quiet=True
        )
        payload = json.loads((tmp_path / "flagged_smoke.json").read_text())
        assert payload["smoke"] is True

    def test_smoke_env_pinned_during_run_and_restored(self, tmp_path):
        seen = {}

        def run():
            seen["env"] = os.environ.get(SMOKE_ENV)
            seen["mode"] = smoke_mode()
            return {"config": {}}

        previous = os.environ.get(SMOKE_ENV)
        make_spec(run=run, workload=None).execute(
            smoke=True, directory=tmp_path, quiet=True
        )
        assert seen == {"env": "1", "mode": True}
        assert os.environ.get(SMOKE_ENV) == previous

    def test_active_profiler_available_inside_run_only(self, tmp_path):
        seen = {}

        def run():
            seen["profiler"] = active_profiler()
            return {"config": {}}

        profiler = Profiler(trace_memory=False)
        make_spec(run=run, workload=None).execute(
            smoke=True, profiler=profiler, directory=tmp_path, quiet=True
        )
        assert seen["profiler"] is profiler
        assert active_profiler() is None

    def test_check_failure_marks_not_ok_without_raising(self, tmp_path):
        def check(payload):
            assert payload["value"] == 2, "value drifted"

        result = make_spec(check=check).execute(
            smoke=True, directory=tmp_path, quiet=True
        )
        assert not result.ok
        assert not result.manifest.ok
        assert "value drifted" in result.error

    def test_raise_on_check_propagates(self, tmp_path):
        def check(payload):
            raise AssertionError("boom")

        with pytest.raises(AssertionError, match="boom"):
            make_spec(check=check).execute(
                smoke=True, directory=tmp_path, quiet=True,
                raise_on_check=True,
            )

    def test_manifest_provenance_fields(self, tmp_path):
        result = make_spec().execute(
            smoke=True, directory=tmp_path, quiet=True
        )
        manifest = result.manifest
        assert manifest.bench == "demo"
        assert manifest.seed == 11
        assert manifest.config == {"n": 5}
        assert manifest.events == 100
        assert manifest.smoke is True

    def test_workers_lifted_from_payload_config(self, tmp_path):
        spec = make_spec(run=lambda: {"config": {"workers": 8}})
        result = spec.execute(smoke=True, directory=tmp_path, quiet=True)
        assert result.manifest.workers == 8

    def test_bad_payload_type_rejected(self, tmp_path):
        spec = make_spec(run=lambda: [1, 2], workload=None)
        with pytest.raises(ReproError, match="payload"):
            spec.execute(smoke=True, directory=tmp_path, quiet=True)


class TestRegistry:
    def test_register_and_get(self, clean_registry):
        spec = register("alpha", run=lambda: {"config": {}})
        assert get_spec("alpha") is spec

    def test_reregistration_same_module_replaces(self, clean_registry):
        register("alpha", run=lambda: {"a": 1})
        replacement = register("alpha", run=lambda: {"a": 2})
        assert get_spec("alpha") is replacement

    def test_cross_module_clash_rejected(self, clean_registry):
        def first():
            return {}

        def second():
            return {}

        first.__module__ = "bench_one"
        second.__module__ = "bench_two"
        register("alpha", run=first)
        with pytest.raises(ReproError, match="already registered"):
            register("alpha", run=second)

    def test_missing_name_lists_known(self, clean_registry):
        register("alpha", run=lambda: {})
        with pytest.raises(ReproError, match="alpha"):
            get_spec("missing")


class TestRunSuite:
    def test_suite_appends_history_and_writes_trajectories(
        self, clean_registry, tmp_path
    ):
        register(
            "one", run=lambda: {"config": {}},
            workload=lambda p: {"events": 10}, seed=1,
        )
        register("two", run=lambda: {"config": {}}, seed=2)
        history_path = tmp_path / "history.jsonl"
        results = run_suite(
            smoke=True, directory=tmp_path, history_path=history_path,
            trajectory_dir=tmp_path, quiet=True,
        )
        assert [r.spec.name for r in results] == ["one", "two"]
        manifests = load_history(history_path)
        assert [m.bench for m in manifests] == ["one", "two"]
        trajectory = json.loads((tmp_path / "BENCH_one.json").read_text())
        assert trajectory["runs"] == 1
        assert trajectory["latest"]["ok"] is True

    def test_second_run_extends_trajectory(self, clean_registry, tmp_path):
        register("one", run=lambda: {"config": {}})
        history_path = tmp_path / "history.jsonl"
        for _ in range(2):
            run_suite(
                smoke=True, directory=tmp_path, history_path=history_path,
                trajectory_dir=tmp_path, quiet=True,
            )
        trajectory = json.loads((tmp_path / "BENCH_one.json").read_text())
        assert trajectory["runs"] == 2
        assert len(trajectory["trajectory"]) == 2

    def test_no_history_mode_leaves_store_untouched(
        self, clean_registry, tmp_path
    ):
        register("one", run=lambda: {"config": {}})
        history_path = tmp_path / "history.jsonl"
        run_suite(
            smoke=True, directory=tmp_path, history_path=history_path,
            trajectory_dir=tmp_path, update_history=False, quiet=True,
        )
        assert not history_path.exists()
        assert not (tmp_path / "BENCH_one.json").exists()

    def test_named_subset(self, clean_registry, tmp_path):
        register("one", run=lambda: {"config": {}})
        register("two", run=lambda: {"config": {}})
        results = run_suite(
            names=["two"], smoke=True, directory=tmp_path,
            history_path=tmp_path / "h.jsonl", trajectory_dir=tmp_path,
            quiet=True,
        )
        assert [r.spec.name for r in results] == ["two"]

    def test_check_failure_recorded_not_fatal(self, clean_registry, tmp_path):
        def check(payload):
            raise AssertionError("broken claim")

        register("flaky", run=lambda: {"config": {}}, check=check)
        results = run_suite(
            smoke=True, directory=tmp_path,
            history_path=tmp_path / "h.jsonl", trajectory_dir=tmp_path,
            quiet=True,
        )
        assert not results[0].ok
        manifests = load_history(tmp_path / "h.jsonl")
        assert manifests[0].ok is False
        assert "broken claim" in manifests[0].error

"""Tests for repro.core.strategy (Theorem 1, optimal pattern)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategy import (
    AdversarialPattern,
    canonical_pattern,
    is_canonical,
    optimal_pattern,
    run_theorem1_to_fixed_point,
    theorem1_step,
    uniform_prefix_pattern,
)
from repro.exceptions import DistributionError


def _pattern(probs, c=0):
    return AdversarialPattern(np.asarray(probs, dtype=float), cache_size=c)


class TestAdversarialPattern:
    def test_basic_properties(self):
        p = _pattern([0.5, 0.3, 0.2, 0.0], c=1)
        assert p.m == 4
        assert p.x == 3
        assert p.h == 0.5
        assert p.cached_fraction == pytest.approx(0.5)
        assert p.backend_fraction == pytest.approx(0.5)

    def test_rejects_unsorted(self):
        with pytest.raises(DistributionError):
            _pattern([0.2, 0.8])

    def test_rejects_not_summing_to_one(self):
        with pytest.raises(DistributionError):
            _pattern([0.5, 0.3])

    def test_rejects_negative(self):
        with pytest.raises(DistributionError):
            _pattern([1.2, -0.2])

    def test_rejects_bad_cache_size(self):
        with pytest.raises(DistributionError):
            _pattern([1.0], c=2)


class TestCanonicalPattern:
    def test_uniform_default(self):
        p = canonical_pattern(m=10, x=4, cache_size=2)
        assert np.allclose(p.probs[:4], 0.25)
        assert np.allclose(p.probs[4:], 0.0)

    def test_single_key(self):
        p = canonical_pattern(m=5, x=1, cache_size=0)
        assert p.probs[0] == 1.0
        assert p.x == 1

    def test_explicit_h_with_remainder(self):
        p = canonical_pattern(m=10, x=4, cache_size=0, h=0.3)
        assert np.allclose(p.probs[:3], 0.3)
        assert p.probs[3] == pytest.approx(0.1)

    def test_h_out_of_range_rejected(self):
        with pytest.raises(DistributionError):
            canonical_pattern(m=10, x=4, cache_size=0, h=0.5)  # > 1/(x-1)
        with pytest.raises(DistributionError):
            canonical_pattern(m=10, x=4, cache_size=0, h=0.2)  # < 1/x

    def test_x_out_of_range_rejected(self):
        with pytest.raises(DistributionError):
            canonical_pattern(m=10, x=0, cache_size=0)
        with pytest.raises(DistributionError):
            canonical_pattern(m=10, x=11, cache_size=0)

    def test_uniform_prefix_minimises_cache_absorption(self):
        # Among canonical patterns with the same x, h = 1/x gives the
        # largest back-end fraction.
        c, x, m = 3, 8, 20
        uniform = uniform_prefix_pattern(m, x, c)
        other = canonical_pattern(m, x, c, h=1.0 / (x - 1))
        assert uniform.backend_fraction >= other.backend_fraction


class TestIsCanonical:
    def test_uniform_prefix_is_canonical(self):
        assert is_canonical(uniform_prefix_pattern(20, 7, 3))

    def test_remainder_form_is_canonical(self):
        assert is_canonical(canonical_pattern(10, 4, 0, h=0.3))

    def test_strictly_decreasing_is_not_canonical(self):
        p = _pattern([0.4, 0.3, 0.2, 0.1])
        assert not is_canonical(p)

    def test_single_key_is_canonical(self):
        assert is_canonical(canonical_pattern(5, 1, 0))


class TestTheorem1Step:
    def test_fixed_point_returns_none(self):
        p = uniform_prefix_pattern(10, 5, 2)
        assert theorem1_step(p) is None

    def test_step_moves_mass_upward(self):
        p = _pattern([0.4, 0.3, 0.2, 0.1], c=1)
        stepped = theorem1_step(p)
        assert stepped is not None
        # Total mass conserved, still sorted, still a distribution.
        assert stepped.probs.sum() == pytest.approx(1.0)
        assert np.all(np.diff(stepped.probs) <= 1e-12)

    def test_step_never_decreases_backend_share_of_top_uncached(self):
        p = _pattern([0.4, 0.3, 0.2, 0.1], c=1)
        stepped = theorem1_step(p)
        # The most queried uncached key moved toward h.
        assert stepped.probs[1] >= p.probs[1]

    def test_convergence_to_canonical(self):
        rng = np.random.default_rng(7)
        raw = np.sort(rng.random(12))[::-1]
        p = _pattern(raw / raw.sum(), c=3)
        fixed, steps = run_theorem1_to_fixed_point(p)
        assert is_canonical(fixed)
        assert fixed.probs.sum() == pytest.approx(1.0)
        assert steps <= 2 * p.m

    @given(
        m=st.integers(min_value=2, max_value=30),
        c=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_convergence_property(self, m, c, seed):
        """Theorem 1 iteration always reaches a canonical fixed point
        while conserving probability mass.

        Per the paper's Eq. (3) the cached prefix is equalised at ``h``
        *before* Theorem 1 applies (the theorem only moves mass between
        uncached keys), so the generator equalises it here too.
        """
        c = min(c, m)
        rng = np.random.default_rng(seed)
        raw = np.sort(rng.random(m))[::-1] + 1e-9
        raw[:c] = raw[0]  # Eq. (3): cached keys share the top rate h
        p = _pattern(raw / raw.sum(), c=c)
        fixed, _ = run_theorem1_to_fixed_point(p)
        assert is_canonical(fixed, atol=1e-7)
        assert fixed.probs.sum() == pytest.approx(1.0)
        # The number of queried keys never increases.
        assert fixed.x <= p.x


class TestOptimalPattern:
    def test_uses_uniform_prefix(self, small_params):
        p = optimal_pattern(small_params, x=25)
        assert p.x == 25
        assert np.allclose(p.probs[:25], 1.0 / 25)

    def test_empirical_load_improvement(self, small_params, rng):
        """End-to-end Theorem 1 check: the canonical pattern yields at
        least the expected max back-end load of a skewed non-canonical
        pattern with the same x (averaged over placements)."""
        from repro.ballsbins.allocation import sample_replica_groups
        from repro.cluster.selection import LeastLoadedKeyPinning

        params = small_params
        x = 30
        skewed_raw = np.sort(rng.random(x))[::-1] + 0.05
        skewed = np.zeros(params.m)
        skewed[:x] = skewed_raw / skewed_raw.sum()
        canonical = optimal_pattern(params, x).probs

        policy = LeastLoadedKeyPinning()

        def mean_max_load(probs, trials=80):
            total = 0.0
            for t in range(trials):
                gen = np.random.default_rng(1000 + t)
                rates = probs[params.c : x] * params.rate
                groups = sample_replica_groups(x - params.c, params.n, params.d, rng=gen)
                loads = policy.node_loads(groups, rates, params.n)
                total += loads.max()
            return total / trials

        assert mean_max_load(canonical) >= mean_max_load(skewed) * 0.98

"""Golden regression tests: recompute the committed fixtures and compare.

The fixtures under ``tests/golden/`` pin reproduced paper numbers —
analytic bound curves, the static-failure unavailability formula, a
seeded small-system Figure-3 curve, and one seeded event-driven run with
the online monitor attached and chaos *off*.  Any drift means a change
moved reproduced numbers; regenerate deliberately with
``PYTHONPATH=src python tests/golden/make_golden.py`` and say so in the
commit message.
"""

import importlib.util
import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Analytic fixtures compare numerically at this tolerance; the
#: event-driven baseline compares *exactly* (it is a byte-level
#: chaos-off contract, not a float-stability check).
TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def make_golden():
    """The fixture-generation module, loaded from its script file."""
    spec = importlib.util.spec_from_file_location(
        "make_golden", GOLDEN_DIR / "make_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load(name: str) -> dict:
    path = GOLDEN_DIR / name
    assert path.exists(), f"missing committed fixture {path}"
    return json.loads(path.read_text(encoding="utf-8"))


def _roundtrip(payload: dict) -> dict:
    """Normalise through JSON exactly like the fixture writer does."""
    return json.loads(json.dumps(payload, sort_keys=True, allow_nan=False))


def _assert_close(fresh, pinned, path="$"):
    """Recursive comparison: floats at TOLERANCE, all else exact."""
    if isinstance(pinned, dict):
        assert isinstance(fresh, dict), f"{path}: type changed"
        assert set(fresh) == set(pinned), (
            f"{path}: keys changed {sorted(set(fresh) ^ set(pinned))}"
        )
        for key in pinned:
            _assert_close(fresh[key], pinned[key], f"{path}.{key}")
    elif isinstance(pinned, list):
        assert isinstance(fresh, list), f"{path}: type changed"
        assert len(fresh) == len(pinned), f"{path}: length changed"
        for i, (f, p) in enumerate(zip(fresh, pinned)):
            _assert_close(f, p, f"{path}[{i}]")
    elif isinstance(pinned, bool) or not isinstance(pinned, (int, float)):
        assert fresh == pinned, f"{path}: {fresh!r} != {pinned!r}"
    else:
        assert fresh == pytest.approx(pinned, abs=TOLERANCE, rel=TOLERANCE), (
            f"{path}: {fresh!r} drifted from pinned {pinned!r}"
        )


class TestAnalyticFixtures:
    def test_analytic_bounds(self, make_golden):
        _assert_close(
            _roundtrip(make_golden.analytic_bounds()), _load("analytic_bounds.json")
        )

    def test_failures_expected(self, make_golden):
        _assert_close(
            _roundtrip(make_golden.failures_expected()),
            _load("failures_expected.json"),
        )

    def test_fig3_small_sim(self, make_golden):
        _assert_close(
            _roundtrip(make_golden.fig3_small_sim()), _load("fig3_small_sim.json")
        )


class TestEventSimBaseline:
    """Chaos off must keep the event engine + monitor *byte-identical*
    to the pre-chaos behaviour — the issue's acceptance criterion."""

    def test_exact_equality(self, make_golden):
        fresh = _roundtrip(make_golden.eventsim_baseline())
        pinned = _load("eventsim_baseline.json")
        assert fresh == pinned

    def test_baseline_carries_no_chaos_fields(self):
        pinned = _load("eventsim_baseline.json")
        for window in pinned["windows"]:
            assert "effective_d" not in window
            assert "degraded_bound" not in window
            assert "unavailable" not in window
        for summary in pinned["summaries"]:
            assert "unavailable" not in summary
            assert "effective_d_min" not in summary

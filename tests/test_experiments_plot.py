"""Tests for the ASCII plot renderer."""

import pytest

from repro.exceptions import AnalysisError
from repro.experiments.plot import ascii_plot


class TestAsciiPlot:
    def test_basic_structure(self):
        text = ascii_plot([1, 2, 3], {"y": [1.0, 2.0, 3.0]}, width=20, height=6)
        lines = text.splitlines()
        assert len(lines) == 6 + 3  # grid + axis + x labels + legend
        assert lines[-1].strip().startswith("*=y")

    def test_title_prepended(self):
        text = ascii_plot([1, 2], {"y": [0.0, 1.0]}, title="hello")
        assert text.splitlines()[0] == "hello"

    def test_extremes_plotted_at_edges(self):
        text = ascii_plot([0, 10], {"y": [0.0, 5.0]}, width=10, height=5)
        lines = text.splitlines()
        assert "*" in lines[0]      # max value on the top row
        assert "*" in lines[4]      # min value on the bottom row
        assert lines[0].rstrip().endswith("*") is False or True

    def test_multiple_series_get_distinct_markers(self):
        text = ascii_plot(
            [1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]}, width=20, height=6
        )
        assert "*=a" in text and "o=b" in text
        assert "o" in text

    def test_hline_rendered(self):
        text = ascii_plot([1, 2], {"y": [0.0, 2.0]}, hline=1.0, width=20, height=9)
        assert any(set(line.split("|")[-1].strip()) <= {"-", "*"} and "-" in line
                   for line in text.splitlines() if "|" in line)

    def test_constant_series_does_not_crash(self):
        text = ascii_plot([1, 2, 3], {"y": [5.0, 5.0, 5.0]})
        assert "*" in text

    def test_single_point(self):
        text = ascii_plot([7], {"y": [1.0]})
        assert "*" in text

    def test_log_x(self):
        text = ascii_plot([1, 10, 100], {"y": [1, 2, 3]}, logx=True, width=21, height=5)
        # In log space the middle point sits near the middle column.
        star_cols = [line.index("*") for line in text.splitlines() if "*" in line and "|" in line]
        assert len(star_cols) == 3

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            ascii_plot([0, 1], {"y": [1, 2]}, logx=True)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ascii_plot([1, 2], {}, width=20, height=6)
        with pytest.raises(AnalysisError):
            ascii_plot([1, 2], {"y": [1.0]}, width=20, height=6)
        with pytest.raises(AnalysisError):
            ascii_plot([1, 2], {"y": [1, 2]}, width=4, height=2)

    def test_cli_plot_flag(self, capsys):
        from repro.cli import main

        code = main(["fig5b", "--trials", "2", "--seed", "1", "--plot"])
        out = capsys.readouterr().out
        assert code == 0
        assert "*=x_queried" in out

"""Tests for repro.ballsbins.allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ballsbins.allocation import (
    _d_choice_batched,
    _d_choice_sequential,
    d_choice_allocate,
    one_choice_allocate,
    replica_group_allocate,
    sample_replica_groups,
)
from repro.exceptions import ConfigurationError


class TestOneChoice:
    def test_conservation(self, rng):
        occ = one_choice_allocate(1000, 37, rng=rng)
        assert occ.sum() == 1000
        assert occ.shape == (37,)

    def test_zero_balls(self):
        occ = one_choice_allocate(0, 5, rng=1)
        assert occ.sum() == 0

    def test_reproducible(self):
        a = one_choice_allocate(500, 10, rng=42)
        b = one_choice_allocate(500, 10, rng=42)
        assert (a == b).all()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            one_choice_allocate(-1, 5)
        with pytest.raises(ConfigurationError):
            one_choice_allocate(5, 0)


class TestSampleReplicaGroups:
    def test_shape(self, rng):
        groups = sample_replica_groups(100, 20, 3, rng=rng)
        assert groups.shape == (100, 3)
        assert groups.min() >= 0 and groups.max() < 20

    def test_distinct_within_rows(self, rng):
        groups = sample_replica_groups(500, 10, 3, rng=rng, distinct=True)
        for row in groups:
            assert len(set(row.tolist())) == 3

    def test_extreme_distinct_case(self, rng):
        # d = bins: every row must be a permutation of all bins.
        groups = sample_replica_groups(50, 4, 4, rng=rng, distinct=True)
        for row in groups:
            assert sorted(row.tolist()) == [0, 1, 2, 3]

    def test_with_replacement_mode(self, rng):
        groups = sample_replica_groups(2000, 3, 3, rng=rng, distinct=False)
        has_dup = any(len(set(r.tolist())) < 3 for r in groups)
        assert has_dup  # with 3 bins, duplicates are near-certain

    def test_zero_balls(self):
        assert sample_replica_groups(0, 5, 2, rng=1).shape == (0, 2)


class TestDChoice:
    def test_conservation(self, rng):
        occ = d_choice_allocate(1000, 37, 3, rng=rng)
        assert occ.sum() == 1000

    def test_d_one_equals_first_column(self, rng):
        choices = sample_replica_groups(200, 10, 1, rng=rng)
        occ = d_choice_allocate(200, 10, 1, choices=choices)
        assert (occ == np.bincount(choices[:, 0], minlength=10)).all()

    def test_never_worse_than_round_down(self, rng):
        # Greedy least-loaded cannot leave any bin above ceil(M/N) + gap;
        # sanity: the max is at most one-choice max on the same stats.
        occ = d_choice_allocate(10_000, 100, 3, rng=rng)
        assert occ.max() >= 100  # at least the average
        assert occ.max() <= 110  # far tighter than one-choice in practice

    def test_much_better_balanced_than_one_choice(self):
        """The power of d choices: the gap above the mean collapses."""
        gaps_one, gaps_d = [], []
        for seed in range(5):
            one = one_choice_allocate(50_000, 500, rng=seed)
            multi = d_choice_allocate(50_000, 500, 3, rng=seed)
            gaps_one.append(one.max() - 100)
            gaps_d.append(multi.max() - 100)
        assert np.mean(gaps_d) < np.mean(gaps_one) / 3

    def test_choices_shape_validated(self):
        with pytest.raises(ConfigurationError):
            d_choice_allocate(10, 5, 2, choices=np.zeros((9, 2), dtype=int))

    def test_rejects_d_above_bins(self):
        with pytest.raises(ConfigurationError):
            d_choice_allocate(10, 3, 4)

    @given(
        balls=st.integers(min_value=0, max_value=500),
        bins=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_property(self, balls, bins, seed):
        """Occupancy always sums to the ball count, for any (M, N, d)."""
        d = min(3, bins)
        occ = d_choice_allocate(balls, bins, d, rng=seed)
        assert occ.sum() == balls
        assert (occ >= 0).all()


class TestBatchedKernel:
    """The vectorized kernel must be byte-identical to the reference loop."""

    @given(
        bins=st.integers(min_value=1, max_value=40),
        balls=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=10_000),
        d_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_batched_equals_sequential(self, bins, balls, seed, d_frac):
        """Identity over the whole (bins, d, balls) space, d=1..bins."""
        d = 1 + round(d_frac * (bins - 1))  # hits both d=1 and d=bins
        choices = np.random.default_rng(seed).integers(0, bins, size=(balls, d))
        sequential = _d_choice_sequential(choices, bins)
        batched = _d_choice_batched(np.ascontiguousarray(choices), bins)
        assert (sequential == batched).all()
        assert sequential.sum() == balls

    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_identity_at_batch_scale(self, d):
        """Above the auto threshold, where the batched path actually runs."""
        choices = sample_replica_groups(6000, 64, d, rng=7)
        sequential = d_choice_allocate(6000, 64, d, choices=choices, method="sequential")
        batched = d_choice_allocate(6000, 64, d, choices=choices, method="batched")
        auto = d_choice_allocate(6000, 64, d, choices=choices, method="auto")
        assert (sequential == batched).all()
        assert (sequential == auto).all()

    def test_tiny_window_forces_multiple_rounds(self):
        """window=2 exercises the round carry-over and tail-finish paths."""
        choices = np.random.default_rng(3).integers(0, 6, size=(300, 3))
        sequential = _d_choice_sequential(choices, 6)
        batched = _d_choice_batched(np.ascontiguousarray(choices), 6, window=2)
        assert (sequential == batched).all()

    def test_duplicate_bins_within_row_not_self_blocking(self):
        """A ball listing one bin twice must still place (with replacement)."""
        targets = np.arange(5000) % 197
        choices = np.stack([targets, targets], axis=1)  # both slots same bin
        sequential = _d_choice_sequential(choices, 197)
        batched = _d_choice_batched(np.ascontiguousarray(choices), 197)
        assert (sequential == batched).all()
        assert (sequential == np.bincount(targets, minlength=197)).all()

    def test_method_validation(self):
        with pytest.raises(ConfigurationError):
            d_choice_allocate(10, 5, 2, method="vectorised")


class TestReplicaGroupAllocate:
    @pytest.mark.parametrize("selection", ["least-loaded", "random", "first"])
    def test_integer_selections_conserve(self, selection, rng):
        occ = replica_group_allocate(300, 20, 3, rng=rng, selection=selection)
        assert occ.sum() == 300

    def test_split_conserves_fractionally(self, rng):
        occ = replica_group_allocate(300, 20, 3, rng=rng, selection="split")
        assert occ.sum() == pytest.approx(300.0)

    def test_least_loaded_is_best_balanced(self):
        # Least-loaded corrects for fluctuations in how many groups a
        # bin joined; even splitting inherits them (std ~ sqrt(M d)/d per
        # bin) and random picking is worst (std ~ sqrt(M/N)).
        maxima = {}
        for selection in ("least-loaded", "random", "split"):
            occ = replica_group_allocate(30_000, 100, 3, rng=9, selection=selection)
            maxima[selection] = float(np.max(occ))
        assert maxima["least-loaded"] <= maxima["split"] <= maxima["random"]

    def test_unknown_selection_rejected(self):
        with pytest.raises(ConfigurationError):
            replica_group_allocate(10, 5, 2, selection="nope")

"""Tests for repro.workload.distributions and zipf."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DistributionError
from repro.workload.distributions import (
    CustomDistribution,
    GeometricDistribution,
    PointMassDistribution,
    UniformDistribution,
)
from repro.workload.zipf import ZipfDistribution

ALL_DISTRIBUTIONS = [
    UniformDistribution(100),
    PointMassDistribution(100, key=7),
    CustomDistribution(np.arange(1, 101)[::-1].astype(float)),
    GeometricDistribution(100, ratio=0.9),
    ZipfDistribution(100, s=1.01),
]


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.name)
class TestDistributionContract:
    def test_probabilities_sum_to_one(self, dist):
        probs = dist.probabilities()
        assert probs.shape == (100,)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_sample_in_range(self, dist):
        keys = dist.sample(500, rng=1)
        assert keys.shape == (500,)
        assert keys.min() >= 0 and keys.max() < 100

    def test_sample_reproducible(self, dist):
        assert (dist.sample(100, rng=3) == dist.sample(100, rng=3)).all()

    def test_sample_zero(self, dist):
        assert dist.sample(0, rng=1).size == 0

    def test_sample_counts_is_multinomial(self, dist):
        counts = dist.sample_counts(1000, rng=2)
        assert counts.sum() == 1000
        assert (counts >= 0).all()

    def test_expected_rates_scale(self, dist):
        rates = dist.expected_rates(500.0)
        assert rates.sum() == pytest.approx(500.0)

    def test_top_keys_sorted_by_probability(self, dist):
        probs = dist.probabilities()
        top = dist.top_keys(10)
        assert len(top) == 10
        threshold = probs[top].min()
        others = np.delete(probs, top)
        assert (others <= threshold + 1e-12).all()

    def test_sample_matches_probabilities(self, dist):
        """Empirical frequencies track the declared law (chi-ish check)."""
        keys = dist.sample(50_000, rng=11)
        emp = np.bincount(keys, minlength=100) / 50_000
        assert np.abs(emp - dist.probabilities()).max() < 0.02

    def test_negative_size_rejected(self, dist):
        with pytest.raises(DistributionError):
            dist.sample(-1)


class TestUniform:
    def test_flat(self):
        probs = UniformDistribution(4).probabilities()
        assert np.allclose(probs, 0.25)


class TestPointMass:
    def test_all_mass_on_key(self):
        dist = PointMassDistribution(10, key=3)
        probs = dist.probabilities()
        assert probs[3] == 1.0
        assert (dist.sample(50, rng=1) == 3).all()

    def test_rejects_out_of_range_key(self):
        with pytest.raises(DistributionError):
            PointMassDistribution(10, key=10)


class TestCustom:
    def test_normalises(self):
        dist = CustomDistribution(np.array([2.0, 2.0]))
        assert np.allclose(dist.probabilities(), [0.5, 0.5])

    def test_rejects_negative(self):
        with pytest.raises(DistributionError):
            CustomDistribution(np.array([1.0, -0.5]))

    def test_rejects_zero_mass(self):
        with pytest.raises(DistributionError):
            CustomDistribution(np.array([0.0, 0.0]))


class TestGeometric:
    def test_monotone_decreasing(self):
        probs = GeometricDistribution(50, ratio=0.8).probabilities()
        assert (np.diff(probs) < 0).all()

    def test_ratio_one_is_uniform(self):
        probs = GeometricDistribution(10, ratio=1.0).probabilities()
        assert np.allclose(probs, 0.1)

    def test_rejects_bad_ratio(self):
        with pytest.raises(DistributionError):
            GeometricDistribution(10, ratio=0.0)
        with pytest.raises(DistributionError):
            GeometricDistribution(10, ratio=1.5)


class TestZipf:
    def test_monotone_decreasing(self):
        probs = ZipfDistribution(100, s=1.01).probabilities()
        assert (np.diff(probs) < 0).all()

    def test_head_concentration_like_paper(self):
        """The paper: 'near 80% workloads are concentrated on 20% items'
        for Zipf(1.01).  On large key spaces the 20% head indeed carries
        the strong majority of the mass."""
        dist = ZipfDistribution(100_000, s=1.01)
        assert dist.head_mass(20_000) > 0.75

    def test_head_mass_monotone(self):
        dist = ZipfDistribution(1000, s=1.01)
        assert dist.head_mass(10) < dist.head_mass(100) < dist.head_mass(1000)
        assert dist.head_mass(1000) == pytest.approx(1.0)

    def test_s_zero_is_uniform(self):
        probs = ZipfDistribution(10, s=0.0).probabilities()
        assert np.allclose(probs, 0.1)

    def test_rejects_negative_s(self):
        with pytest.raises(DistributionError):
            ZipfDistribution(10, s=-1.0)

    @given(
        m=st.integers(min_value=1, max_value=500),
        s=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_valid_distribution_property(self, m, s):
        probs = ZipfDistribution(m, s=s).probabilities()
        assert probs.sum() == pytest.approx(1.0)
        assert (np.diff(probs) <= 1e-15).all()

"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.core.notation import SystemParameters


@pytest.fixture
def small_params() -> SystemParameters:
    """A small replicated system used across unit tests."""
    return SystemParameters(n=20, m=500, c=10, d=3, rate=1000.0)


@pytest.fixture
def paper_params() -> SystemParameters:
    """The paper's Figure-3(a) system."""
    return SystemParameters(n=1000, m=100_000, c=200, d=3, rate=1e5)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for deterministic unit tests."""
    return np.random.default_rng(12345)

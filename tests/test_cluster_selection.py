"""Tests for repro.cluster.selection policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.selection import (
    LeastLoadedKeyPinning,
    PerQueryRandomSpreading,
    PrimaryKeyPinning,
    RandomKeyPinning,
    RoundRobinSpreading,
    make_selection_policy,
)
from repro.exceptions import ConfigurationError

POLICIES = [
    LeastLoadedKeyPinning(),
    RandomKeyPinning(),
    PrimaryKeyPinning(),
    RoundRobinSpreading(),
    PerQueryRandomSpreading(),
]


def _case(rng, keys=50, n=10, d=3):
    groups = np.stack(
        [rng.choice(n, size=d, replace=False) for _ in range(keys)]
    )
    rates = rng.random(keys) + 0.1
    return groups, rates


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
class TestPolicyContract:
    def test_conserves_total_rate(self, policy, rng):
        groups, rates = _case(rng)
        loads = policy.node_loads(groups, rates, 10, rng=rng)
        assert loads.sum() == pytest.approx(rates.sum())

    def test_loads_nonnegative_and_right_shape(self, policy, rng):
        groups, rates = _case(rng)
        loads = policy.node_loads(groups, rates, 10, rng=rng)
        assert loads.shape == (10,)
        assert (loads >= 0).all()

    def test_empty_input(self, policy, rng):
        loads = policy.node_loads(
            np.zeros((0, 3), dtype=int), np.zeros(0), 5, rng=rng
        )
        assert (loads == 0).all()

    def test_load_stays_inside_groups(self, policy, rng):
        # All groups use only nodes {0, 1, 2}; nothing may leak elsewhere.
        groups = np.array([[0, 1, 2]] * 20)
        rates = np.ones(20)
        loads = policy.node_loads(groups, rates, 10, rng=rng)
        assert loads[3:].sum() == pytest.approx(0.0)

    def test_validation_errors(self, policy, rng):
        with pytest.raises(ConfigurationError):
            policy.node_loads(np.array([[0, 1]]), np.array([1.0, 2.0]), 5, rng=rng)
        with pytest.raises(ConfigurationError):
            policy.node_loads(np.array([[0, 9]]), np.array([1.0]), 5, rng=rng)
        with pytest.raises(ConfigurationError):
            policy.node_loads(np.array([[0, 1]]), np.array([-1.0]), 5, rng=rng)


class TestLeastLoaded:
    def test_equal_rates_match_d_choice_process(self, rng):
        from repro.ballsbins.allocation import d_choice_allocate

        groups = np.stack([rng.choice(20, size=3, replace=False) for _ in range(300)])
        loads = LeastLoadedKeyPinning().node_loads(groups, np.ones(300), 20)
        occ = d_choice_allocate(300, 20, 3, choices=groups)
        assert (loads == occ.astype(float)).all()

    def test_deterministic(self, rng):
        groups, rates = _case(rng)
        a = LeastLoadedKeyPinning().node_loads(groups, rates, 10)
        b = LeastLoadedKeyPinning().node_loads(groups, rates, 10)
        assert (a == b).all()

    def test_balances_better_than_random(self):
        rng = np.random.default_rng(0)
        groups = np.stack([rng.choice(50, size=3, replace=False) for _ in range(5000)])
        rates = np.ones(5000)
        ll = LeastLoadedKeyPinning().node_loads(groups, rates, 50)
        rnd = RandomKeyPinning().node_loads(groups, rates, 50, rng=1)
        assert ll.max() < rnd.max()


class TestRoundRobin:
    def test_exact_split(self):
        groups = np.array([[0, 1, 2], [2, 3, 4]])
        rates = np.array([3.0, 6.0])
        loads = RoundRobinSpreading().node_loads(groups, rates, 5)
        assert loads[0] == pytest.approx(1.0)
        assert loads[2] == pytest.approx(1.0 + 2.0)
        assert loads[4] == pytest.approx(2.0)


class TestPrimary:
    def test_all_rate_on_first_replica(self):
        groups = np.array([[3, 1], [3, 0]])
        loads = PrimaryKeyPinning().node_loads(groups, np.array([1.0, 2.0]), 5)
        assert loads[3] == pytest.approx(3.0)
        assert loads.sum() == pytest.approx(3.0)


class TestPerQueryRandom:
    def test_mean_matches_round_robin(self):
        groups = np.array([[0, 1, 2]] * 10)
        rates = np.full(10, 30.0)
        totals = np.zeros(5)
        for seed in range(30):
            totals += PerQueryRandomSpreading().node_loads(groups, rates, 5, rng=seed)
        means = totals / 30
        assert means[0] == pytest.approx(100.0, rel=0.1)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ConfigurationError):
            PerQueryRandomSpreading(queries_per_unit_rate=0)


class TestFactory:
    @pytest.mark.parametrize(
        "name",
        ["least-loaded", "random-pin", "primary", "round-robin", "per-query-random"],
    )
    def test_all_names_constructible(self, name):
        assert make_selection_policy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_selection_policy("bogus")

    @given(
        keys=st.integers(min_value=0, max_value=60),
        n=st.integers(min_value=2, max_value=15),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_property_all_policies(self, keys, n, seed):
        """All policies conserve the offered rate exactly (the invariant
        the LoadVector math depends on)."""
        rng = np.random.default_rng(seed)
        d = min(3, n)
        groups = (
            np.stack([rng.choice(n, size=d, replace=False) for _ in range(keys)])
            if keys
            else np.zeros((0, d), dtype=int)
        )
        rates = rng.random(keys) if keys else np.zeros(0)
        for policy in POLICIES:
            loads = policy.node_loads(groups, rates, n, rng=seed)
            assert loads.sum() == pytest.approx(rates.sum())

"""Tests for repro.ballsbins.bounds against the exact processes."""

import pytest

from repro.ballsbins.allocation import d_choice_allocate, one_choice_allocate
from repro.ballsbins.bounds import (
    d_choice_max_load_bound,
    max_load_bound,
    one_choice_max_load_bound,
)
from repro.exceptions import ConfigurationError


class TestOneChoiceBound:
    def test_zero_balls(self):
        assert one_choice_max_load_bound(0, 10) == 0.0

    def test_single_bin(self):
        assert one_choice_max_load_bound(42, 1) == 42.0

    def test_tracks_simulation_heavily_loaded(self):
        # Raab-Steger is a concentration estimate (the max lands around
        # it, half the trials slightly above), not a strict bound: check
        # it within a few percent both ways.
        bins = 100
        balls = 50_000
        bound = one_choice_max_load_bound(balls, bins)
        for seed in range(10):
            occ = one_choice_allocate(balls, bins, rng=seed)
            assert occ.max() <= bound * 1.05
            assert occ.max() >= bound * 0.90

    def test_monotone_in_balls(self):
        assert one_choice_max_load_bound(2000, 50) > one_choice_max_load_bound(1000, 50)


class TestDChoiceBound:
    def test_rejects_d_one(self):
        with pytest.raises(ConfigurationError):
            d_choice_max_load_bound(10, 5, 1)

    def test_covers_simulation_with_calibrated_k_prime(self):
        bins, balls = 200, 20_000
        bound = d_choice_max_load_bound(balls, bins, 3, k_prime=1.0)
        for seed in range(10):
            occ = d_choice_allocate(balls, bins, 3, rng=seed)
            assert occ.max() <= bound

    def test_excess_independent_of_ball_count(self):
        """The defining property vs one choice: the excess over M/N does
        not grow with M."""
        small = d_choice_max_load_bound(1000, 100, 3) - 10.0
        large = d_choice_max_load_bound(100_000, 100, 3) - 1000.0
        assert small == pytest.approx(large)

    def test_more_choices_tighter(self):
        assert d_choice_max_load_bound(1000, 100, 4) < d_choice_max_load_bound(
            1000, 100, 2
        )


class TestDispatch:
    def test_d_one_routes_to_one_choice(self):
        assert max_load_bound(500, 20, 1) == one_choice_max_load_bound(500, 20)

    def test_d_three_routes_to_d_choice(self):
        assert max_load_bound(500, 20, 3, k_prime=0.3) == d_choice_max_load_bound(
            500, 20, 3, k_prime=0.3
        )

"""Tests for repro.chaos: schedules, retry policy, config, and the
fault-injected request path of both simulation engines."""

import json

import numpy as np
import pytest

from repro.chaos import (
    EVENT_KINDS,
    ChaosConfig,
    FailureEvent,
    FailureSchedule,
    NodeStateTracker,
    RetryPolicy,
)
from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError
from repro.obs import LoadMonitor, MonitorConfig
from repro.sim.analytic import MonteCarloSimulator
from repro.sim.config import SimulationConfig
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution


def _params(**overrides):
    base = dict(n=20, m=500, c=10, d=3, rate=2000.0)
    base.update(overrides)
    return SystemParameters(**base)


class TestFailureEvent:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailureEvent(time=-1.0, node=0, kind="crash")
        with pytest.raises(ConfigurationError):
            FailureEvent(time=0.0, node=-1, kind="crash")
        with pytest.raises(ConfigurationError):
            FailureEvent(time=0.0, node=0, kind="explode")
        with pytest.raises(ConfigurationError):
            FailureEvent(time=0.0, node=0, kind="slow", factor=0.0)
        with pytest.raises(ConfigurationError):
            FailureEvent(time=0.0, node=0, kind="slow", factor=1.5)

    def test_ordering_is_time_then_node_then_kind(self):
        events = [
            FailureEvent(time=2.0, node=0, kind="crash"),
            FailureEvent(time=1.0, node=5, kind="crash"),
            FailureEvent(time=1.0, node=2, kind="recover"),
            FailureEvent(time=1.0, node=2, kind="crash"),
        ]
        ordered = sorted(events)
        assert [(e.time, e.node, e.kind) for e in ordered] == [
            (1.0, 2, "crash"),
            (1.0, 2, "recover"),
            (1.0, 5, "crash"),
            (2.0, 0, "crash"),
        ]

    def test_dict_round_trip(self):
        slow = FailureEvent(time=0.5, node=3, kind="slow", factor=0.25)
        assert FailureEvent.from_dict(slow.to_dict()) == slow
        crash = FailureEvent(time=0.5, node=3, kind="crash")
        assert "factor" not in crash.to_dict()
        assert FailureEvent.from_dict(crash.to_dict()) == crash

    def test_event_kinds_vocabulary(self):
        assert EVENT_KINDS == ("crash", "recover", "slow", "restore")


class TestFailureSchedule:
    def test_constructor_sorts(self):
        late = FailureEvent(time=2.0, node=0, kind="crash")
        early = FailureEvent(time=1.0, node=1, kind="crash")
        sched = FailureSchedule((late, early))
        assert sched.events == (early, late)
        assert len(sched) == 2
        assert list(sched) == [early, late]

    def test_generate_is_deterministic(self):
        a = FailureSchedule.generate(10, 5.0, failure_rate=0.5, mttr=0.3, rng=42)
        b = FailureSchedule.generate(10, 5.0, failure_rate=0.5, mttr=0.3, rng=42)
        c = FailureSchedule.generate(10, 5.0, failure_rate=0.5, mttr=0.3, rng=43)
        assert a.events == b.events
        assert a.events != c.events
        assert a.crash_count > 0

    def test_generate_pairs_crash_with_recover(self):
        sched = FailureSchedule.generate(8, 10.0, failure_rate=0.4, mttr=0.2, rng=1)
        kinds = [e.kind for e in sched]
        assert kinds.count("crash") == kinds.count("recover")
        # A node's recover always lands after its crash.
        for node in sched.nodes_touched():
            times = [(e.time, e.kind) for e in sched if e.node == node]
            for (t1, k1), (t2, k2) in zip(times, times[1:]):
                assert t1 <= t2

    def test_generate_zero_rate_is_empty(self):
        sched = FailureSchedule.generate(5, 10.0, failure_rate=0.0, mttr=0.5, rng=0)
        assert len(sched) == 0
        assert sched.max_time == 0.0

    def test_generate_validation(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule.generate(0, 1.0, failure_rate=0.1, mttr=0.1)
        with pytest.raises(ConfigurationError):
            FailureSchedule.generate(5, 0.0, failure_rate=0.1, mttr=0.1)
        with pytest.raises(ConfigurationError):
            FailureSchedule.generate(5, 1.0, failure_rate=-0.1, mttr=0.1)
        with pytest.raises(ConfigurationError):
            FailureSchedule.generate(5, 1.0, failure_rate=0.1, mttr=0.0)

    def test_slow_process(self):
        sched = FailureSchedule.generate(
            6, 20.0, failure_rate=0.0, mttr=0.5, rng=3,
            slow_rate=0.5, slow_factor=0.5,
        )
        assert len(sched) > 0
        assert all(e.kind in ("slow", "restore") for e in sched)
        assert all(e.factor == 0.5 for e in sched if e.kind == "slow")

    def test_state_at(self):
        sched = FailureSchedule((
            FailureEvent(time=1.0, node=0, kind="crash"),
            FailureEvent(time=2.0, node=1, kind="slow", factor=0.25),
            FailureEvent(time=3.0, node=0, kind="recover"),
            FailureEvent(time=4.0, node=1, kind="restore"),
        ))
        down, slow = sched.state_at(0.5)
        assert down == frozenset() and slow == {}
        down, slow = sched.state_at(2.5)
        assert down == frozenset({0}) and slow == {1: 0.25}
        down, slow = sched.state_at(10.0)
        assert down == frozenset() and slow == {}

    def test_json_round_trip(self, tmp_path):
        sched = FailureSchedule.generate(
            10, 5.0, failure_rate=0.5, mttr=0.3, rng=7,
            slow_rate=0.2, slow_factor=0.5,
        )
        path = sched.to_json(tmp_path / "schedule.json")
        loaded = FailureSchedule.from_json(path)
        assert loaded == sched
        # Written payload is stable JSON.
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        with pytest.raises(ConfigurationError):
            FailureSchedule.from_dict({"schema": 1})


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout == 0.05

    def test_delay_grows_then_caps(self):
        policy = RetryPolicy(
            max_attempts=6, timeout=0.1, backoff=0.01,
            multiplier=2.0, max_backoff=0.04,
        )
        assert policy.delay(1) == pytest.approx(0.11)
        assert policy.delay(2) == pytest.approx(0.12)
        assert policy.delay(3) == pytest.approx(0.14)
        # 0.01 * 2**3 = 0.08 caps at 0.04.
        assert policy.delay(4) == pytest.approx(0.14)
        assert policy.total_budget() == pytest.approx(
            sum(policy.delay(a) for a in range(1, 6))
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay(0)


class TestChaosConfig:
    def test_steady_state_fraction(self):
        cfg = ChaosConfig(failure_rate=0.5, mttr=0.5)
        # Up mean 2.0, down mean 0.5 -> 0.5/2.5.
        assert cfg.steady_state_failed_fraction == pytest.approx(0.2)
        assert ChaosConfig(failure_rate=0.0).steady_state_failed_fraction == 0.0

    def test_schedule_for_prefers_explicit(self):
        explicit = FailureSchedule((FailureEvent(time=0.1, node=0, kind="crash"),))
        cfg = ChaosConfig(schedule=explicit)
        assert cfg.schedule_for(20, 10.0, rng=0) is explicit

    def test_schedule_for_synthesises_deterministically(self):
        cfg = ChaosConfig(failure_rate=0.5, mttr=0.25)
        a = cfg.schedule_for(10, 5.0, rng=11)
        b = cfg.schedule_for(10, 5.0, rng=11)
        assert a == b and len(a) > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(failure_rate=-1.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(mttr=0.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(slow_factor=2.0)

    def test_describe(self):
        assert "failure_rate" in ChaosConfig().describe()
        explicit = ChaosConfig(
            schedule=FailureSchedule((FailureEvent(time=0.1, node=0, kind="crash"),))
        )
        assert "explicit schedule (1 events)" in explicit.describe()


class TestNodeStateTracker:
    def test_apply_and_queries(self):
        tracker = NodeStateTracker(4)
        assert tracker.down_count == 0
        assert tracker.apply(FailureEvent(time=0.1, node=1, kind="crash"))
        # Second crash of the same node is a no-op.
        assert not tracker.apply(FailureEvent(time=0.2, node=1, kind="crash"))
        assert not tracker.is_up(1)
        assert tracker.down_count == 1
        assert tracker.down_fraction == pytest.approx(0.25)
        assert tracker.down_nodes() == (1,)
        assert tracker.surviving([0, 1, 2]) == (0, 2)
        assert tracker.apply(FailureEvent(time=0.3, node=1, kind="recover"))
        assert not tracker.apply(FailureEvent(time=0.4, node=1, kind="recover"))
        assert tracker.down_count == 0

    def test_slow_restore(self):
        tracker = NodeStateTracker(2)
        assert tracker.rate_factor(0) == 1.0
        assert tracker.apply(FailureEvent(time=0.1, node=0, kind="slow", factor=0.5))
        assert tracker.rate_factor(0) == 0.5
        assert not tracker.apply(
            FailureEvent(time=0.2, node=0, kind="slow", factor=0.5)
        )
        assert tracker.apply(FailureEvent(time=0.3, node=0, kind="restore"))
        assert not tracker.apply(FailureEvent(time=0.4, node=0, kind="restore"))

    def test_out_of_range_node(self):
        tracker = NodeStateTracker(2)
        with pytest.raises(ConfigurationError):
            tracker.apply(FailureEvent(time=0.1, node=5, kind="crash"))


class TestEventEngineChaos:
    """The live failover path: acceptance criteria from the issue."""

    @pytest.fixture(scope="class")
    def chaos_run(self):
        params = _params()
        monitor = LoadMonitor(MonitorConfig.from_params(params, x=11, window=0.05))
        chaos = ChaosConfig(failure_rate=0.5, mttr=0.5)
        sim = EventDrivenSimulator(
            params, AdversarialDistribution(500, 11), seed=7,
            monitor=monitor, chaos=chaos,
        )
        result = sim.run(4000, trial=0)
        return params, monitor, result

    def test_failures_actually_happen(self, chaos_run):
        _, _, result = chaos_run
        assert result.failure_events > 0
        assert result.retries > 0
        assert result.failovers > 0

    def test_accounting_invariant(self, chaos_run):
        _, _, result = chaos_run
        served = int(result.served.sum())
        dropped = int(result.dropped.sum())
        assert served + dropped + result.unavailable == result.backend_queries
        assert result.crash_lost <= dropped

    def test_effective_d_degrades_below_d(self, chaos_run):
        params, monitor, _ = chaos_run
        eff = [
            w["effective_d"] for w in monitor.windows if "effective_d" in w
        ]
        assert eff, "chaos windows must carry effective_d"
        assert min(eff) < params.d
        assert all(e <= params.d for e in eff)

    def test_degraded_bound_exceeds_healthy_bound(self, chaos_run):
        params, monitor, _ = chaos_run
        config = monitor.config
        healthy = config.bound_for(x=11)
        degraded = [
            w["degraded_bound"]
            for w in monitor.windows
            if w.get("effective_d", params.d) < params.d
            and w.get("degraded_bound") is not None
        ]
        assert degraded, "degraded windows must refresh the bound"
        assert max(degraded) > healthy

    def test_degraded_bound_alert_fires(self, chaos_run):
        _, monitor, _ = chaos_run
        rules = {a["rule"] for a in monitor.alerts}
        assert "degraded-bound" in rules

    def test_summary_has_chaos_fields(self, chaos_run):
        params, monitor, result = chaos_run
        summary = monitor.summaries[-1]
        assert summary["unavailable"] == result.unavailable
        assert summary["effective_d_min"] < params.d

    def test_node_event_records_logged(self, chaos_run):
        _, monitor, result = chaos_run
        node_events = [
            r for r in monitor.events.records if r["type"] == "node-event"
        ]
        assert len(node_events) == result.failure_events
        assert all(r["nodes_down"] >= 0 for r in node_events)

    def test_explicit_schedule_replayed(self):
        params = _params()
        schedule = FailureSchedule(
            tuple(
                FailureEvent(time=0.01, node=node, kind="crash")
                for node in range(params.n - 1)
            )
        )
        chaos = ChaosConfig(
            schedule=schedule, serve_stale=False,
            retry=RetryPolicy(max_attempts=3, timeout=0.001, backoff=0.001),
        )
        sim = EventDrivenSimulator(
            params, AdversarialDistribution(500, 11), seed=7, chaos=chaos,
        )
        result = sim.run(1000, trial=0)
        assert result.failure_events == params.n - 1
        # Most keys lose all replicas to the single surviving node.
        assert result.unavailable > 0
        assert result.stale_hits == 0

    def test_serve_stale_counts_separately(self):
        params = _params()
        # Crash everything after a warmup window so refetches hit stale.
        schedule = FailureSchedule(
            tuple(
                FailureEvent(time=0.5, node=node, kind="crash")
                for node in range(params.n)
            )
        )
        chaos = ChaosConfig(schedule=schedule, serve_stale=True)
        sim = EventDrivenSimulator(
            params, AdversarialDistribution(500, 11), seed=7, chaos=chaos,
        )
        result = sim.run(4000, trial=0)
        assert result.unavailable > 0
        assert 0 < result.stale_hits <= result.unavailable

    def test_chaos_off_has_no_chaos_artifacts(self):
        params = _params()
        sim = EventDrivenSimulator(
            params, AdversarialDistribution(500, 11), seed=7,
        )
        result = sim.run(1000, trial=0)
        assert result.failure_events == 0
        assert result.unavailable == 0
        assert result.retries == 0
        assert result.crash_lost == 0


class TestMonteCarloChaos:
    def test_selection_guard(self):
        cfg = SimulationConfig(
            params=_params(), trials=2, seed=1, selection="random",
            chaos=ChaosConfig(),
        )
        with pytest.raises(ConfigurationError):
            MonteCarloSimulator(cfg)

    def test_metadata_carries_effective_d(self):
        chaos = ChaosConfig(failure_rate=0.5, mttr=0.5)  # f = 0.2
        cfg = SimulationConfig(params=_params(), trials=3, seed=5, chaos=chaos)
        report = MonteCarloSimulator(cfg).uniform_attack(11)
        assert report.metadata["failed_fraction"] == pytest.approx(0.2)
        assert report.metadata["effective_d"] == pytest.approx(2.4)

    def test_degradation_worsens_gain(self):
        params = _params(n=50, m=2000, c=25, rate=10_000.0)
        healthy = MonteCarloSimulator(
            SimulationConfig(params=params, trials=20, seed=9)
        ).uniform_attack(2000)
        degraded = MonteCarloSimulator(
            SimulationConfig(
                params=params, trials=20, seed=9,
                chaos=ChaosConfig(failure_rate=1.0, mttr=1.0),  # f = 0.5
            )
        ).uniform_attack(2000)
        assert degraded.mean > healthy.mean

    def test_monitor_window_gets_degraded_bound(self):
        params = _params()
        monitor = LoadMonitor(MonitorConfig.from_params(params, x=11))
        chaos = ChaosConfig(failure_rate=0.5, mttr=0.5)
        cfg = SimulationConfig(
            params=params, trials=3, seed=5, chaos=chaos, monitor=monitor,
        )
        MonteCarloSimulator(cfg).uniform_attack(11)
        windows = [w for w in monitor.windows if "effective_d" in w]
        assert windows
        for w in windows:
            assert w["effective_d"] == pytest.approx(2.4)
            assert w["degraded_bound"] > monitor.config.bound_for(x=11)
        rules = {a["rule"] for a in monitor.alerts}
        assert "degraded-bound" in rules

    def test_chaos_part_of_config_identity(self):
        a = SimulationConfig(params=_params(), trials=2, seed=1)
        b = SimulationConfig(params=_params(), trials=2, seed=1,
                             chaos=ChaosConfig())
        assert a != b
        with pytest.raises(ConfigurationError):
            SimulationConfig(params=_params(), trials=2, chaos="not-a-config")


class TestDegradedBoundMath:
    def test_matches_formula(self):
        config = MonitorConfig(n=1000, c=200, d=3, x=201, k_prime=0.75)
        d_eff = 2.4
        expected = 1.0 + (
            1.0 - 200 + 1000 * (np.log(np.log(1000)) / np.log(d_eff) + 0.75)
        ) / (201 - 1)
        assert config.degraded_bound_for(201, d_eff) == pytest.approx(expected)

    def test_grows_as_d_eff_shrinks(self):
        config = MonitorConfig(n=1000, c=200, d=3, x=201, k_prime=0.75)
        bounds = [config.degraded_bound_for(201, d) for d in (3.0, 2.5, 2.0, 1.5)]
        assert all(b is not None for b in bounds)
        assert bounds == sorted(bounds)

    def test_degenerate_cases(self):
        config = MonitorConfig(n=1000, c=200, d=3, x=201, k_prime=0.75)
        assert config.degraded_bound_for(201, None) is None
        assert config.degraded_bound_for(201, 1.0) is None
        assert config.degraded_bound_for(None, 2.0) is None
        assert config.degraded_bound_for(100, 2.0) is None  # x <= c
        # Tiny n clamps the log log term to zero rather than going
        # negative/complex.
        tiny = MonitorConfig(n=2, c=0, d=2, x=5, k_prime=0.75)
        assert tiny.degraded_bound_for(5, 1.5) == pytest.approx(
            1.0 + (1.0 + 2 * 0.75) / 4.0
        )

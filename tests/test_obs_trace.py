"""Causal request tracing + attribution: the determinism lockdown.

Four contracts, each pinned here:

1. **RNG-free sampling** — attaching a flight recorder never touches an
   engine RNG stream: traced and untraced runs produce identical
   results, and the hash sampler's admit rate converges to the
   configured fraction (hypothesis) as a pure function of
   ``(seed, trial, key, index)``.
2. **Engine equality** — the legacy scheduler and the fast batched
   kernel emit *identical* trace records for the same seeded run (the
   queueing differential contract, extended to the trace layer).
3. **Worker-count invariance** — a traced scenario's exported JSONL and
   suspects block are byte-identical serial vs ``workers=4``.
4. **Offline == online** — rebuilding a recorder from the exported
   trace (``repro forensics`` / ``replay --attribution``) reproduces
   the live suspects, alerts and per-trial summaries exactly.

Plus the ISSUE's acceptance scenario: under a ``shard-flood`` the top
attributed prefix is a ground-truth attack bucket, the top client is
the attacker, and ``attribution-concentration`` fires.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.notation import SystemParameters
from repro.exceptions import ScenarioValidationError
from repro.obs import recompute
from repro.obs.forensics import (
    path_breakdown,
    render_forensics_html,
    render_forensics_text,
    timeline_bins,
)
from repro.obs.trace import (
    FlightRecorder,
    HashSampler,
    StrideSampler,
    TraceConfig,
)
from repro.scenario.build import BuildContext, build_component
from repro.scenario.campaign import run_scenario
from repro.scenario.spec import ComponentSpec, ScenarioSpec
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution
from repro.workload.zipf import ZipfDistribution

PARAMS = SystemParameters(n=16, m=400, c=8, d=3, rate=2000.0)


def _result_fingerprint(result):
    return (
        result.duration,
        result.frontend_hits,
        result.backend_queries,
        result.normalized_max,
        result.drop_rate,
        result.latency_p99,
        tuple(result.served.tolist()),
        tuple(result.dropped.tolist()),
    )


class TestHashSampler:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        sample=st.sampled_from([0.05, 0.2, 0.5, 0.9]),
    )
    @settings(max_examples=15, deadline=None)
    def test_rate_converges(self, seed, sample):
        """Admitted fraction ~ sample over a long key stream."""
        sampler = HashSampler(seed, sample)
        keys = np.arange(5000, dtype=np.int64) % 97
        frac = float(sampler.mask(keys).mean())
        assert abs(frac - sample) < 0.06

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_pure_function_of_identifiers(self, seed):
        """Same (seed, trial) -> same mask; trials decorrelate."""
        keys = np.arange(800, dtype=np.int64)
        a = HashSampler(seed, 0.3, trial=0).mask(keys)
        b = HashSampler(seed, 0.3, trial=0).mask(keys)
        c = HashSampler(seed, 0.3, trial=1).mask(keys)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_edge_rates(self):
        keys = np.arange(100, dtype=np.int64)
        assert HashSampler(1, 1.0).mask(keys).all()
        assert not HashSampler(1, 0.0).mask(keys).any()

    def test_stride_sampler_rate(self):
        keys = np.arange(1000, dtype=np.int64)
        mask = StrideSampler(3, 0.1).mask(keys)
        assert int(mask.sum()) == 100

    def test_consumes_no_engine_rng(self):
        """Traced and untraced runs are numerically identical."""
        dist = ZipfDistribution(PARAMS.m, 1.1)
        base = EventDrivenSimulator(PARAMS, dist, seed=11).run(3000)
        recorder = FlightRecorder(TraceConfig(sample=0.3), seed=11)
        traced = EventDrivenSimulator(
            PARAMS, dist, seed=11, trace=recorder
        ).run(3000)
        assert _result_fingerprint(base) == _result_fingerprint(traced)
        assert recorder.sampled > 0


class TestEngineEquality:
    @pytest.mark.parametrize("service", ["deterministic", "exponential"])
    @pytest.mark.parametrize("sample", [1.0, 0.2])
    def test_legacy_and_fast_records_identical(self, service, sample):
        dist = AdversarialDistribution(PARAMS.m, PARAMS.c + 1)
        recorders = {}
        for engine in ("legacy", "fast"):
            recorder = FlightRecorder(TraceConfig(sample=sample), seed=5)
            sim = EventDrivenSimulator(
                PARAMS, dist, seed=5, engine=engine,
                routing="pin", service=service, trace=recorder,
            )
            sim.run(4000)
            assert sim.last_engine == engine
            recorders[engine] = recorder
        assert recorders["legacy"].records == recorders["fast"].records
        assert recorders["legacy"].suspects() == recorders["fast"].suspects()
        assert recorders["legacy"].alerts == recorders["fast"].alerts

    def test_multi_trial_summaries_match(self):
        dist = ZipfDistribution(PARAMS.m, 1.2)
        recorders = {}
        for engine in ("legacy", "fast"):
            recorder = FlightRecorder(TraceConfig(sample=0.5), seed=9)
            sim = EventDrivenSimulator(
                PARAMS, dist, seed=9, engine=engine, trace=recorder
            )
            for trial in range(3):
                sim.run(1500, trial=trial)
            recorders[engine] = recorder
        assert recorders["legacy"].summaries == recorders["fast"].summaries


def _traced_spec(workers: int = 1, **overrides) -> ScenarioSpec:
    data = {
        "scenario": 1,
        "name": "trace/contract",
        "system": {"n": 16, "m": 400, "c": 8, "d": 3, "rate": 2000.0},
        "workload": {"kind": "zipf", "s": 1.2},
        "engine": "event-driven",
        "trace": {"kind": "hash", "sample": 0.4},
        "trials": 4,
        "queries": 1200,
        "seed": 21,
        "workers": workers,
    }
    data.update(overrides)
    data = {k: v for k, v in data.items() if v is not None}
    return ScenarioSpec.from_dict(data)


class TestWorkerInvariance:
    def test_trace_jsonl_and_suspects_identical(self, tmp_path):
        serial = run_scenario(_traced_spec(workers=1))
        parallel = run_scenario(_traced_spec(workers=4))
        assert serial.stats == parallel.stats
        assert serial.trace.records == parallel.trace.records
        assert serial.trace.suspects() == parallel.trace.suspects()
        assert serial.trace.summaries == parallel.trace.summaries
        a, b = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
        serial.trace.write(a)
        parallel.trace.write(b)
        assert a.read_bytes() == b.read_bytes()

    def test_trace_section_leaves_campaign_stats_unchanged(self):
        traced = run_scenario(_traced_spec())
        untraced_spec = _traced_spec()
        untraced_spec = ScenarioSpec.from_dict(
            {
                k: v
                for k, v in untraced_spec.to_dict().items()
                if k != "trace"
            }
        )
        untraced = run_scenario(untraced_spec)
        assert untraced.trace is None
        assert "trace" not in untraced.stats
        stats = dict(traced.stats)
        stats.pop("trace")
        assert stats == untraced.stats


class TestSpecSurface:
    def test_round_trip_preserves_trace_section(self):
        spec = _traced_spec()
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again.trace == spec.trace
        assert again == spec

    def test_monte_carlo_rejects_trace(self):
        spec = _traced_spec(
            engine="monte-carlo",
            workload=None,
            adversary={"kind": "subset-flood", "x": 9},
        )
        with pytest.raises(ScenarioValidationError, match="event-driven"):
            run_scenario(spec)

    def test_unknown_sampler_kind_rejected(self):
        with pytest.raises(ScenarioValidationError, match="hash"):
            run_scenario(_traced_spec(trace={"kind": "no-such-sampler"}))


class TestRingBound:
    def test_capacity_evicts_oldest(self):
        recorder = FlightRecorder(TraceConfig(sample=1.0, capacity=100), seed=3)
        EventDrivenSimulator(
            PARAMS, ZipfDistribution(PARAMS.m, 1.1), seed=3, trace=recorder
        ).run(1000)
        assert len(recorder.records) == 100
        assert recorder.evicted == 900
        assert recorder.sampled == 1000
        # The ring keeps the most recent records.
        assert recorder.records[-1]["i"] == 999


class TestOfflineRecompute:
    def test_from_export_matches_live(self, tmp_path):
        outcome = run_scenario(_traced_spec())
        live = outcome.trace
        path = tmp_path / "trace.jsonl"
        live.write(path)
        durations = {
            s["trial"]: d
            for s, d in zip(
                live.summaries,
                [r.duration for r in outcome.result.results],
            )
        }
        offline = FlightRecorder.from_export(path, durations=durations)
        assert offline.suspects() == live.suspects()
        assert offline.alerts == live.alerts
        assert offline.summaries == live.summaries
        assert offline.seen == live.seen
        assert offline.sampled == live.sampled

    def test_recompute_single_run(self):
        recorder = FlightRecorder(TraceConfig(sample=1.0), seed=2)
        result = EventDrivenSimulator(
            PARAMS,
            AdversarialDistribution(PARAMS.m, PARAMS.c + 1),
            seed=2,
            trace=recorder,
        ).run(2000)
        out = recompute(
            recorder.records, recorder.config, trial=0,
            duration=result.duration,
        )
        assert out["suspects"] == recorder.summaries[0]["suspects"]
        assert out["alerts"] == recorder.summaries[0]["alerts"]


class TestShardFloodAttribution:
    """The ISSUE's acceptance scenario."""

    def test_top_suspect_is_ground_truth(self):
        spec = ScenarioSpec.from_dict({
            "scenario": 1,
            "name": "trace/shard-flood",
            "system": {"n": 16, "m": 400, "c": 8, "d": 3, "rate": 2000.0},
            "adversary": {"kind": "shard-flood"},
            "engine": "event-driven",
            "trace": {"kind": "hash", "sample": 1.0},
            "trials": 2,
            "queries": 2000,
            "seed": 7,
        })
        outcome = run_scenario(spec)
        recorder = outcome.trace
        adversary = build_component(
            "adversary",
            ComponentSpec.from_data({"kind": "shard-flood"}, "adversary"),
            BuildContext(params=spec.system, seed=spec.seed),
        )
        buckets = recorder.config.prefix_buckets
        truth = {
            int(key) * buckets // spec.system.m for key in adversary.keys
        }
        suspects = recorder.suspects()
        assert suspects["prefixes"][0]["prefix"] in truth
        assert suspects["clients"][0]["client"] == 1
        fired = {alert["rule"] for alert in recorder.alerts}
        assert "attribution-concentration" in fired
        # Each firing names a ground-truth bucket as the suspect.
        assert all(alert["prefix"] in truth for alert in recorder.alerts)
        assert outcome.stats["trace"]["alerts"] == len(recorder.alerts)

    def test_ground_truth_client_map_flows_from_distribution(self):
        adversary = build_component(
            "adversary",
            ComponentSpec.from_data({"kind": "shard-flood"}, "adversary"),
            BuildContext(params=PARAMS, seed=1),
        )
        ids = adversary.distribution().client_map()
        assert ids is not None
        assert set(np.unique(ids)) == {0, 1}
        assert (ids[adversary.keys] == 1).all()


class TestForensicsRenderers:
    @pytest.fixture()
    def recorder(self):
        recorder = FlightRecorder(TraceConfig(sample=1.0), seed=4)
        EventDrivenSimulator(
            PARAMS,
            AdversarialDistribution(PARAMS.m, PARAMS.c + 1, client_id=2),
            seed=4,
            trace=recorder,
        ).run(2000)
        return recorder

    def test_path_breakdown_partitions_records(self, recorder):
        rows = path_breakdown(recorder.records)
        assert sum(row["requests"] for row in rows) == len(recorder.records)
        assert abs(sum(row["share"] for row in rows) - 1.0) < 1e-9

    def test_timeline_bins_align_with_alerts(self, recorder):
        bins = timeline_bins(
            recorder.records, recorder.alerts, window=recorder.config.window
        )
        assert sum(slot["requests"] for slot in bins) == len(recorder.records)
        flagged = {
            (alert["trial"], alert["window"]) for alert in recorder.alerts
        }
        marked = {
            (slot["trial"], slot["index"]) for slot in bins if slot["alert"]
        }
        assert marked == flagged

    def test_text_and_html_render(self, recorder):
        text = render_forensics_text(recorder)
        assert "suspects over" in text
        assert "causal path breakdown" in text
        page = render_forensics_html(recorder, title="t")
        assert page.startswith("<!DOCTYPE html>")
        assert "<svg" in page
        assert "Suspect prefixes" in page

    def test_offline_render_matches_live(self, recorder, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder.write(path)
        offline = FlightRecorder.from_export(path)
        # Offline duration = last record time; suspects are duration-
        # independent, only a trailing window's alert could differ.
        assert offline.suspects() == recorder.suspects()


class TestJsonlExport:
    def test_manifest_and_records_round_trip(self, tmp_path):
        recorder = FlightRecorder(TraceConfig(sample=0.5), seed=6)
        EventDrivenSimulator(
            PARAMS, ZipfDistribution(PARAMS.m, 1.1), seed=6, trace=recorder
        ).run(1500)
        path = tmp_path / "trace.jsonl"
        recorder.write(path)
        lines = path.read_text().splitlines()
        head = json.loads(lines[0])
        assert head["type"] == "trace-manifest"
        assert head["config"] == recorder.config.to_dict()
        assert head["sampled"] == recorder.sampled == len(lines) - 1
        data = FlightRecorder.read(path)
        assert data["records"] == recorder.records

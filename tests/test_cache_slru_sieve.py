"""Behavioural tests for the SLRU and SIEVE policies."""

import numpy as np
import pytest

from repro.cache.lru import LRUCache
from repro.cache.sieve import SieveCache
from repro.cache.slru import SLRUCache
from repro.exceptions import CacheError


class TestSLRU:
    def test_new_keys_enter_probation(self):
        cache = SLRUCache(10)
        cache.access(1)
        assert cache.probation_size == 1
        assert cache.protected_size == 0

    def test_rereference_promotes(self):
        cache = SLRUCache(10)
        cache.access(1)
        cache.access(1)
        assert cache.protected_size == 1
        assert cache.probation_size == 0

    def test_scan_cannot_enter_protected(self):
        cache = SLRUCache(10)
        # Establish a protected working set.
        for key in range(3):
            cache.access(key)
            cache.access(key)
        assert cache.protected_size == 3
        # One-shot scan: churns probation only.
        for key in range(100, 200):
            cache.access(key)
        assert all(key in cache for key in range(3))

    def test_protected_overflow_demotes(self):
        cache = SLRUCache(5, protected_fraction=0.4)  # protected cap 2
        for key in range(3):
            cache.access(key)
            cache.access(key)
        # Only 2 fit in protected; one was demoted back to probation.
        assert cache.protected_size == 2
        assert len(cache) == 3

    def test_probation_evicted_first(self):
        cache = SLRUCache(4, protected_fraction=0.5)
        cache.access(1)
        cache.access(1)  # protected
        for key in range(10, 16):
            cache.access(key)  # churns probation
        assert 1 in cache

    def test_rejects_bad_fraction(self):
        with pytest.raises(CacheError):
            SLRUCache(4, protected_fraction=0.0)
        with pytest.raises(CacheError):
            SLRUCache(4, protected_fraction=1.0)


class TestSieve:
    def test_visited_entries_survive_sweep(self):
        cache = SieveCache(3)
        for key in (1, 2, 3):
            cache.access(key)
        cache.access(1)  # mark visited
        cache.access(4)  # sweep: 2 (oldest unvisited) evicted
        assert 1 in cache
        assert 2 not in cache
        assert 3 in cache and 4 in cache

    def test_hand_resumes_position(self):
        cache = SieveCache(3)
        for key in (1, 2, 3):
            cache.access(key)
        cache.access(1)
        cache.access(2)
        cache.access(4)  # 1,2 visited -> sweep clears them, evicts 3
        assert 3 not in cache
        cache.access(5)  # hand past 3's slot: 1 now unvisited -> evicted
        assert 1 not in cache
        assert 2 in cache

    def test_one_hit_wonders_sift_out(self):
        """The design goal: a looping hot set survives interleaved
        one-shot keys far better than under LRU."""
        hot = list(range(8))

        def run(cache, seed=11):
            rng = np.random.default_rng(seed)
            hits = 0
            for _ in range(400):
                for key in hot:
                    # Double-tap: the second access marks the key
                    # visited while it is certainly resident.
                    hits += cache.access(key)
                    hits += cache.access(key)
                for _ in range(5):
                    cache.access(int(1000 + rng.integers(0, 100_000)))
            return hits

        # LRU's reuse distance (12 distinct keys) exceeds capacity 10,
        # so every round's first accesses miss; SIEVE's visited bits
        # keep the hot set in place and evict the one-hit noise.
        assert run(SieveCache(10)) > 1.5 * run(LRUCache(10))

    def test_total_eviction_and_reinsertion(self):
        cache = SieveCache(2)
        for key in range(10):
            cache.access(key)
        assert len(cache) == 2
        # Re-access an evicted key: normal miss + insert.
        assert not cache.access(0)
        assert 0 in cache

    def test_remove_mid_list_keeps_links_consistent(self):
        cache = SieveCache(4)
        for key in (1, 2, 3, 4):
            cache.access(key)
        cache.access(2)  # visit 2
        cache.access(3)  # visit 3
        # Evictions hit 1 then 4 (the unvisited ones), never corrupting
        # the list.
        cache.access(5)
        cache.access(6)
        resident = set(cache.keys())
        assert 2 in resident and 3 in resident
        assert len(resident) == 4

"""Tests for the discrete-event scheduler and the node queue model."""

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.engine import EventScheduler
from repro.sim.queueing import NodeServer
from repro.sim.requests import Request


class TestEventScheduler:
    def test_fires_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(3.0, lambda s, t: fired.append(("c", t)))
        sched.schedule(1.0, lambda s, t: fired.append(("a", t)))
        sched.schedule(2.0, lambda s, t: fired.append(("b", t)))
        assert sched.run() == 3
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_ties_break_by_insertion_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda s, t: fired.append("first"))
        sched.schedule(1.0, lambda s, t: fired.append("second"))
        sched.run()
        assert fired == ["first", "second"]

    def test_callbacks_can_schedule_more(self):
        sched = EventScheduler()
        fired = []

        def cascade(s, t):
            fired.append(t)
            if t < 3:
                s.schedule(t + 1, cascade)

        sched.schedule(0.0, cascade)
        sched.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_until_leaves_future_events_queued(self):
        sched = EventScheduler()
        fired = []
        for t in (1.0, 2.0, 5.0):
            sched.schedule(t, lambda s, tt: fired.append(tt))
        assert sched.run(until=3.0) == 2
        assert sched.pending == 1
        assert sched.run() == 1

    def test_scheduling_in_the_past_rejected(self):
        sched = EventScheduler()
        sched.schedule(5.0, lambda s, t: None)
        sched.run()
        with pytest.raises(SimulationError):
            sched.schedule(4.0, lambda s, t: None)

    def test_max_events_guard(self):
        sched = EventScheduler()

        def forever(s, t):
            s.schedule(t, forever)  # same-time loop

        sched.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sched.run(max_events=100)

    def test_now_and_processed_track_progress(self):
        sched = EventScheduler()
        sched.schedule(7.5, lambda s, t: None)
        sched.run()
        assert sched.now == 7.5
        assert sched.processed == 1


class TestNodeServer:
    def _drive(self, server, arrivals):
        sched = EventScheduler()
        accepted = []

        def offer(key, t):
            def fire(s, now):
                accepted.append(server.arrive(s, Request(key=key, arrival_time=now)))

            sched.schedule(t, fire)

        for i, t in enumerate(arrivals):
            offer(i, t)
        sched.run()
        return accepted, sched

    def test_serves_everything_under_light_load(self):
        server = NodeServer(0, service_rate=100.0, queue_limit=10)
        accepted, _ = self._drive(server, [0.1 * i for i in range(20)])
        assert all(accepted)
        assert server.served == 20
        assert server.dropped == 0

    def test_deterministic_service_latency(self):
        # Single arrival: latency is exactly the service time 1/rate.
        server = NodeServer(0, service_rate=50.0)
        self._drive(server, [0.0])
        assert server.latencies == [pytest.approx(0.02)]

    def test_queueing_latency_accumulates(self):
        # Two arrivals at t=0: the second waits one service time.
        server = NodeServer(0, service_rate=10.0)
        self._drive(server, [0.0, 0.0])
        assert server.latencies[0] == pytest.approx(0.1)
        assert server.latencies[1] == pytest.approx(0.2)

    def test_drops_when_queue_full(self):
        # queue_limit=1: burst of 5 at t=0 -> 1 in service + 1 queued,
        # the other 3 dropped.
        server = NodeServer(0, service_rate=1.0, queue_limit=1)
        accepted, _ = self._drive(server, [0.0] * 5)
        assert accepted == [True, True, False, False, False]
        assert server.dropped == 3
        assert server.served == 2

    def test_zero_queue_limit_still_serves_in_service_slot(self):
        server = NodeServer(0, service_rate=1.0, queue_limit=0)
        accepted, _ = self._drive(server, [0.0, 0.0])
        assert accepted == [True, False]

    def test_utilization(self):
        server = NodeServer(0, service_rate=10.0)
        _, sched = self._drive(server, [0.0, 1.0])
        # Two services of 0.1s within ~1.1s of simulated time.
        assert server.utilization(sched.now) == pytest.approx(0.2 / sched.now)

    def test_exponential_service_reproducible(self):
        def run(seed):
            server = NodeServer(0, service_rate=10.0, service="exponential", rng=seed)
            self._drive(server, [0.05 * i for i in range(30)])
            return list(server.latencies)

        assert run(4) == run(4)
        assert run(4) != run(5)

    def test_outstanding_counter(self):
        server = NodeServer(0, service_rate=1.0, queue_limit=10)
        sched = EventScheduler()
        sched.schedule(0.0, lambda s, t: server.arrive(s, Request(0, t)))
        sched.schedule(0.0, lambda s, t: server.arrive(s, Request(1, t)))
        sched.run(until=0.5)
        assert server.outstanding == 2

    def test_latency_sample_cap(self):
        server = NodeServer(
            0, service_rate=1000.0, queue_limit=10, latency_sample_limit=5
        )
        self._drive(server, [0.01 * i for i in range(20)])
        assert len(server.latencies) == 5
        assert server.served == 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NodeServer(0, service_rate=0.0)
        with pytest.raises(ConfigurationError):
            NodeServer(0, service_rate=1.0, queue_limit=-1)
        with pytest.raises(ConfigurationError):
            NodeServer(0, service_rate=1.0, service="weird")

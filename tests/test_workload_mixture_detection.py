"""Tests for workload mixtures and the traffic-profile detector."""

import numpy as np
import pytest

from repro.analysis.detection import profile_counts, profile_keys
from repro.exceptions import AnalysisError, DistributionError
from repro.workload.adversarial import AdversarialDistribution
from repro.workload.distributions import PointMassDistribution, UniformDistribution
from repro.workload.mixture import MixtureDistribution
from repro.workload.scan import CyclicScanDistribution
from repro.workload.zipf import ZipfDistribution

M = 5000


class TestMixtureDistribution:
    def test_probabilities_are_weighted_sum(self):
        mix = MixtureDistribution(
            [(0.75, UniformDistribution(4)), (0.25, PointMassDistribution(4, key=0))]
        )
        probs = mix.probabilities()
        assert probs[0] == pytest.approx(0.75 * 0.25 + 0.25)
        assert probs[1] == pytest.approx(0.75 * 0.25)
        assert probs.sum() == pytest.approx(1.0)

    def test_weights_normalised(self):
        mix = MixtureDistribution(
            [(3.0, UniformDistribution(4)), (1.0, UniformDistribution(4))]
        )
        assert np.allclose(mix.weights, [0.75, 0.25])

    def test_sampling_tracks_weights(self):
        mix = MixtureDistribution(
            [(0.8, PointMassDistribution(10, key=0)),
             (0.2, PointMassDistribution(10, key=9))]
        )
        keys = mix.sample(20_000, rng=1)
        share_zero = float((keys == 0).mean())
        assert share_zero == pytest.approx(0.8, abs=0.02)

    def test_component_ordering_preserved_in_stream(self):
        """A cyclic-scan component stays cyclic within its share."""
        scan = CyclicScanDistribution(M, 50)
        # Mix with uniform over all M keys: hits below 50 from the
        # uniform component are ~1% noise, so the sub-stream below 50 is
        # essentially the scan's.
        mix = MixtureDistribution([(0.5, UniformDistribution(M)), (0.5, scan)])
        keys = mix.sample(2000, rng=2)
        scan_keys = keys[keys < 50]
        # The scan's deterministic order means consecutive scan samples
        # increase (mod 50) — check a strong majority do.
        diffs = np.diff(scan_keys) % 50
        assert (diffs == 1).mean() > 0.5

    def test_attack_fraction(self):
        mix = MixtureDistribution(
            [(0.9, ZipfDistribution(M, 1.01)), (0.1, AdversarialDistribution(M, 500))]
        )
        assert mix.attack_fraction(1) == pytest.approx(0.1)
        with pytest.raises(DistributionError):
            mix.attack_fraction(2)

    def test_validation(self):
        with pytest.raises(DistributionError):
            MixtureDistribution([])
        with pytest.raises(DistributionError):
            MixtureDistribution([(0.0, UniformDistribution(4))])
        with pytest.raises(DistributionError):
            MixtureDistribution(
                [(0.5, UniformDistribution(4)), (0.5, UniformDistribution(5))]
            )

    def test_contract_basics(self):
        mix = MixtureDistribution(
            [(0.6, ZipfDistribution(M, 1.01)), (0.4, AdversarialDistribution(M, 100))]
        )
        assert mix.probabilities().sum() == pytest.approx(1.0)
        keys = mix.sample(1000, rng=3)
        assert keys.min() >= 0 and keys.max() < M


class TestTrafficProfiles:
    def test_adversarial_flood_flagged(self):
        keys = AdversarialDistribution(M, 800).sample(50_000, rng=1)
        profile = profile_keys(keys, m=M)
        assert profile.verdict == "uniform-flood"
        assert profile.flood_like
        assert profile.normalized_entropy > 0.95

    def test_zipf_reads_as_benign_skew(self):
        keys = ZipfDistribution(M, 1.01).sample(50_000, rng=2)
        profile = profile_keys(keys, m=M)
        assert profile.verdict == "skewed-benign"
        assert not profile.flood_like

    def test_flash_crowd_reads_as_concentration(self):
        # 90% of traffic on one item, the rest Zipf.
        mix = MixtureDistribution(
            [(0.9, PointMassDistribution(M, key=7)), (0.1, ZipfDistribution(M, 1.01))]
        )
        profile = profile_keys(mix.sample(50_000, rng=3), m=M)
        assert profile.verdict == "concentrated"
        assert profile.top_key_share > 0.8

    def test_uniform_benign_is_indistinguishable_from_case2_attack(self):
        """The paper's punchline restated by the detector: with a
        provisioned cache the best attack (query everything) has the
        same fingerprint as benign uniform traffic."""
        attack = AdversarialDistribution(M, M).sample(50_000, rng=4)
        benign = UniformDistribution(M).sample(50_000, rng=5)
        assert profile_keys(attack, m=M).verdict == profile_keys(benign, m=M).verdict

    def test_describe(self):
        profile = profile_counts([100, 100, 100])
        assert "3 keys" in profile.describe()

    def test_single_key_stream(self):
        profile = profile_counts([500])
        assert profile.verdict == "concentrated"
        assert profile.normalized_entropy == 0.0
        assert not profile.flood_like

    def test_validation(self):
        with pytest.raises(AnalysisError):
            profile_counts([])
        with pytest.raises(AnalysisError):
            profile_counts([0, 0])
        with pytest.raises(AnalysisError):
            profile_counts([-1, 5])
        with pytest.raises(AnalysisError):
            profile_keys([])

    def test_head_share(self):
        counts = np.ones(200)
        counts[0] = 801  # 1% head = 2 keys
        profile = profile_counts(counts)
        assert profile.head_share_1pct == pytest.approx(802 / 1000.0)

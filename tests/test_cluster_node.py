"""Tests for repro.cluster.node."""

import pytest

from repro.cluster.node import BackendNode, NodeLoad
from repro.exceptions import ConfigurationError


class TestBackendNode:
    def test_uncapped_node(self):
        node = BackendNode(0)
        assert node.capacity is None
        assert node.utilization(100.0) is None
        assert not node.saturated_by(1e9)

    def test_capped_node(self):
        node = BackendNode(1, capacity=50.0)
        assert node.utilization(25.0) == pytest.approx(0.5)
        assert not node.saturated_by(50.0)
        assert node.saturated_by(50.1)

    def test_rejects_negative_id(self):
        with pytest.raises(ConfigurationError):
            BackendNode(-1)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            BackendNode(0, capacity=0.0)


class TestNodeLoad:
    def test_assign_key_accumulates(self):
        account = NodeLoad(BackendNode(0))
        account.assign_key(10.0)
        account.assign_key(5.0)
        assert account.keys_assigned == 2
        assert account.query_rate == pytest.approx(15.0)

    def test_add_rate_does_not_count_keys(self):
        account = NodeLoad(BackendNode(0))
        account.add_rate(7.0)
        assert account.keys_assigned == 0
        assert account.query_rate == pytest.approx(7.0)

    def test_saturation_tracks_capacity(self):
        account = NodeLoad(BackendNode(0, capacity=10.0))
        account.add_rate(9.0)
        assert not account.saturated
        account.add_rate(2.0)
        assert account.saturated

    def test_serve_and_drop_counters(self):
        account = NodeLoad(BackendNode(0))
        account.serve()
        account.serve()
        account.drop()
        assert account.queries_served == 2
        assert account.queries_dropped == 1

    def test_reset(self):
        account = NodeLoad(BackendNode(0))
        account.assign_key(3.0)
        account.serve()
        account.reset()
        assert account.keys_assigned == 0
        assert account.query_rate == 0.0
        assert account.queries_served == 0

    def test_rejects_negative_rate(self):
        account = NodeLoad(BackendNode(0))
        with pytest.raises(ConfigurationError):
            account.assign_key(-1.0)
        with pytest.raises(ConfigurationError):
            account.add_rate(-1.0)

"""Tests for the experiment drivers (reduced-scale, shape-checking)."""

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.experiments.params import PAPER, PaperParams
from repro.experiments.report import ExperimentResult, format_number, render_table
from repro.experiments.fig3 import default_x_grid, run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5, run_fig5a, run_fig5b

# A scaled-down PaperParams: same structure, minutes -> seconds.
SMALL = PaperParams(
    n=100, m=5000, d=3, rate=10_000.0, c_small=20, c_large=400,
    c_fig4=10, trials=6, k=1.2,
)


class TestPaperParams:
    def test_defaults_match_section_four(self):
        assert PAPER.n == 1000
        assert PAPER.d == 3
        assert PAPER.trials == 200
        assert PAPER.k == 1.2
        assert PAPER.c_small == 200
        assert PAPER.c_large == 2000

    def test_critical_cache(self):
        assert PAPER.critical_cache == 1201

    def test_system_builder(self):
        params = PAPER.system(c=300)
        assert params.c == 300 and params.n == 1000
        assert PAPER.system(c=300, n=50).n == 50


class TestReport:
    def test_format_number(self):
        assert format_number(3) == "3"
        assert format_number(3.0) == "3"
        assert format_number(3.14159, precision=3) == "3.14"
        assert format_number(float("nan")) == "nan"
        assert format_number("abc") == "abc"
        assert format_number(True) == "True"

    def test_render_table_alignment(self):
        text = render_table({"x": [1, 20], "gain": [1.5, 0.25]})
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "gain" in lines[0]

    def test_render_rejects_ragged(self):
        with pytest.raises(AnalysisError):
            render_table({"a": [1], "b": [1, 2]})

    def test_experiment_result_render(self):
        result = ExperimentResult(
            name="demo", description="d", columns={"x": [1]}, config={"n": 5},
            notes=["hello"],
        )
        text = result.render()
        assert "== demo" in text
        assert "n=5" in text
        assert "note: hello" in text

    def test_column_accessor(self):
        result = ExperimentResult(name="demo", description="d", columns={"x": [1]})
        assert result.column("x") == [1]
        with pytest.raises(AnalysisError):
            result.column("missing")


class TestFig3:
    def test_default_grid_brackets_range(self):
        grid = default_x_grid(200, 100_000)
        assert grid[0] == 201
        assert grid[-1] == 100_000
        assert (np.diff(grid) > 0).all()

    def test_small_cache_panel_shape(self):
        result = run_fig3(SMALL.c_small, paper=SMALL, seed=1)
        gains = result.column("sim_max")
        xs = result.column("x")
        assert xs[0] == SMALL.c_small + 1
        # Paper shape: decreasing in x, effective near x = c + 1.
        assert gains[0] > 1.0
        assert gains[0] > gains[-1]
        assert "decreasing" in result.notes[0]

    def test_large_cache_panel_shape(self):
        result = run_fig3(SMALL.c_large, paper=SMALL, seed=1)
        gains = result.column("sim_max")
        # Paper shape: increasing in x, never effective.
        assert gains[-1] >= gains[0]
        assert max(gains) <= 1.1  # <= 1 up to Monte-Carlo wiggle
        assert "increasing" in result.notes[0]

    def test_calibrated_bound_holds(self):
        result = run_fig3(SMALL.c_small, paper=SMALL, seed=2)
        sim = np.asarray(result.column("sim_max"))
        calib = np.asarray(result.column("bound_calib"))
        assert (sim <= calib + 1e-9).all()

    def test_explicit_x_values(self):
        result = run_fig3(
            SMALL.c_small, paper=SMALL, x_values=[25, 100, 1000], seed=1
        )
        assert result.column("x") == [25, 100, 1000]

    def test_config_recorded(self):
        result = run_fig3(SMALL.c_small, paper=SMALL, trials=3, seed=1)
        assert result.config["trials"] == 3
        assert result.config["c"] == SMALL.c_small


class TestFig4:
    def test_columns_and_shape(self):
        result = run_fig4(paper=SMALL, n_values=(50, 100, 200), seed=1, m=2000)
        assert result.column("n") == [50, 100, 200]
        adv = result.column("adversarial")
        # Adversarial grows roughly linearly with n (x = c + 1 flood).
        assert adv[-1] > adv[0]
        assert adv[-1] == pytest.approx(200 / (SMALL.c_fig4 + 1), rel=0.05)

    def test_zipf_below_uniform_in_paper_regime(self):
        result = run_fig4(paper=SMALL, n_values=(50, 100), seed=1, m=5000)
        for z, u in zip(result.column("zipf"), result.column("uniform")):
            assert z <= u + 0.1

    def test_uniform_stays_near_one(self):
        result = run_fig4(paper=SMALL, n_values=(50, 100, 200), seed=1, m=5000)
        for u in result.column("uniform"):
            assert 0.8 < u < 1.6


class TestFig5:
    def test_joint_sweep_columns(self):
        result = run_fig5(
            paper=SMALL, cache_values=(20, 100, 300, 600), seed=1
        )
        assert result.column("c") == [20, 100, 300, 600]
        gains = result.column("best_gain")
        assert gains[0] > gains[-1]  # decreasing in cache size
        assert gains[0] > 1.0  # tiny cache: effective

    def test_x_queried_step_structure(self):
        result = run_fig5(paper=SMALL, cache_values=(20, 600), seed=1)
        xs = result.column("x_queried")
        assert xs[0] == 21  # Case 1: c + 1
        assert xs[1] == SMALL.m  # Case 2: the whole key space

    def test_effective_flag_consistent(self):
        result = run_fig5(paper=SMALL, cache_values=(20, 600), seed=1)
        for gain, flag in zip(result.column("best_gain"), result.column("effective")):
            assert flag == (gain > 1.0)

    def test_panel_views(self):
        a = run_fig5a(paper=SMALL, cache_values=(20, 600), seed=1)
        assert set(a.columns) == {"c", "best_gain", "effective"}
        assert a.name == "fig5a"
        b = run_fig5b(paper=SMALL, cache_values=(20, 600), seed=1)
        assert set(b.columns) == {"c", "x_queried"}
        assert b.name == "fig5b"

    def test_notes_mention_critical_points(self):
        result = run_fig5(paper=SMALL, cache_values=(20, 600), seed=1)
        joined = " ".join(result.notes)
        assert "critical point" in joined

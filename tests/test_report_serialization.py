"""Tests for ExperimentResult JSON serialisation."""

import pytest

from repro.exceptions import AnalysisError
from repro.experiments.report import ExperimentResult


def _result():
    return ExperimentResult(
        name="demo",
        description="a demo",
        columns={"x": [1, 2, 3], "gain": [1.5, 1.2, 0.9], "flag": [True, False, True]},
        config={"n": 10, "k": 1.2},
        notes=["hello"],
    )


class TestSerialization:
    def test_round_trip(self):
        original = _result()
        restored = ExperimentResult.from_json(original.to_json())
        assert restored.name == original.name
        assert restored.columns == original.columns
        assert restored.config == original.config
        assert restored.notes == original.notes

    def test_round_trip_renders_identically(self):
        original = _result()
        restored = ExperimentResult.from_json(original.to_json())
        assert restored.render() == original.render()

    def test_numpy_values_serialisable(self):
        import numpy as np

        result = ExperimentResult(
            name="np",
            description="numpy column",
            columns={"v": [np.float64(1.5), np.float64(2.5)]},
        )
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.columns["v"] == [1.5, 2.5]

    def test_real_experiment_round_trip(self):
        from repro.experiments.fig5 import run_fig5b

        result = run_fig5b(trials=2, seed=1, cache_values=(150, 3000))
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.column("x_queried") == result.column("x_queried")

    def test_invalid_json_rejected(self):
        with pytest.raises(AnalysisError):
            ExperimentResult.from_json("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(AnalysisError):
            ExperimentResult.from_json('{"name": "x"}')

    def test_defaults_for_optional_fields(self):
        restored = ExperimentResult.from_json(
            '{"name": "x", "description": "d", "columns": {"a": [1]}}'
        )
        assert restored.config == {}
        assert restored.notes == []

"""Tests for repro.core.notation (Table I parameter object)."""

import pytest

from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_paper_parameters_accepted(self):
        params = SystemParameters(n=1000, m=100_000, c=200, d=3, rate=1e5)
        assert params.n == 1000
        assert params.uncached_items == 99_800

    def test_even_split(self):
        params = SystemParameters(n=10, m=100, c=5, d=2, rate=500.0)
        assert params.even_split == 50.0

    def test_unreplicated_is_allowed(self):
        params = SystemParameters(n=10, m=100, c=5, d=1)
        assert not params.replicated

    def test_replicated_flag(self):
        assert SystemParameters(n=10, m=100, c=5, d=2).replicated

    def test_zero_cache_is_allowed(self):
        assert SystemParameters(n=10, m=100, c=0, d=2).c == 0

    def test_cache_covering_key_space_is_allowed(self):
        assert SystemParameters(n=10, m=100, c=100, d=2).uncached_items == 0


class TestValidation:
    @pytest.mark.parametrize("n", [0, -1])
    def test_rejects_nonpositive_nodes(self, n):
        with pytest.raises(ConfigurationError):
            SystemParameters(n=n, m=10, c=1, d=1)

    @pytest.mark.parametrize("m", [0, -5])
    def test_rejects_nonpositive_items(self, m):
        with pytest.raises(ConfigurationError):
            SystemParameters(n=5, m=m, c=0, d=1)

    def test_rejects_cache_larger_than_key_space(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(n=5, m=10, c=11, d=1)

    def test_rejects_negative_cache(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(n=5, m=10, c=-1, d=1)

    def test_rejects_replication_above_cluster_size(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(n=3, m=10, c=1, d=4)

    def test_rejects_zero_replication(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(n=3, m=10, c=1, d=0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(n=3, m=10, c=1, d=2, rate=-1.0)

    def test_rejects_zero_node_capacity(self):
        with pytest.raises(ConfigurationError):
            SystemParameters(n=3, m=10, c=1, d=2, node_capacity=0.0)


class TestCopies:
    def test_with_cache_returns_new_object(self, small_params):
        bigger = small_params.with_cache(50)
        assert bigger.c == 50
        assert small_params.c == 10
        assert bigger.n == small_params.n

    def test_with_nodes(self, small_params):
        assert small_params.with_nodes(40).n == 40

    def test_with_replication(self, small_params):
        assert small_params.with_replication(2).d == 2

    def test_with_cache_still_validates(self, small_params):
        with pytest.raises(ConfigurationError):
            small_params.with_cache(small_params.m + 1)

    def test_describe_mentions_key_facts(self, small_params):
        text = small_params.describe()
        assert "20 nodes" in text
        assert "3 replicas" in text

    def test_describe_mentions_capacity_when_set(self):
        params = SystemParameters(n=3, m=10, c=1, d=2, node_capacity=50.0)
        assert "50" in params.describe()

    def test_frozen(self, small_params):
        with pytest.raises(Exception):
            small_params.n = 99

"""Tests for the count-min sketch and the TinyLFU admission filter."""

import numpy as np
import pytest

from repro.cache.admission import FrequencyAdmissionCache
from repro.cache.lru import LRUCache
from repro.cache.perfect import PerfectCache
from repro.cache.sketch import CountMinSketch
from repro.exceptions import CacheError


class TestCountMinSketch:
    def test_never_underestimates(self):
        sketch = CountMinSketch(width=256, depth=4)
        rng = np.random.default_rng(1)
        truth = {}
        for key in rng.integers(0, 500, size=3000).tolist():
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_reasonable_overestimation(self):
        sketch = CountMinSketch(width=2048, depth=4)
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 200, size=5000).tolist()
        truth = {}
        for key in keys:
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        errors = [sketch.estimate(k) - c for k, c in truth.items()]
        assert np.mean(errors) < 5.0  # conservative update keeps bias low

    def test_add_count(self):
        sketch = CountMinSketch()
        sketch.add(7, count=5)
        assert sketch.estimate(7) >= 5
        assert sketch.total == 5

    def test_add_zero_is_noop(self):
        sketch = CountMinSketch()
        sketch.add(7, count=0)
        assert sketch.total == 0

    def test_halve(self):
        sketch = CountMinSketch()
        sketch.add(3, count=8)
        sketch.halve()
        assert sketch.estimate(3) == 4
        assert sketch.total == 4

    def test_distinguishes_hot_from_cold(self):
        sketch = CountMinSketch(width=1024, depth=4)
        for _ in range(100):
            sketch.add(1)
        sketch.add(2)
        assert sketch.estimate(1) > sketch.estimate(2)

    def test_rejects_bad_parameters(self):
        with pytest.raises(CacheError):
            CountMinSketch(width=0)
        with pytest.raises(CacheError):
            CountMinSketch(depth=0)
        with pytest.raises(CacheError):
            CountMinSketch(depth=99)

    def test_rejects_negative_count(self):
        with pytest.raises(CacheError):
            CountMinSketch().add(1, count=-1)


class TestFrequencyAdmission:
    def test_rejects_non_evicting_inner(self):
        with pytest.raises(CacheError):
            FrequencyAdmissionCache(PerfectCache(4))

    def test_scan_cannot_displace_hot_keys(self):
        """The headline property: once a hot set is resident with high
        sketch frequency, a one-shot scan flood is rejected at
        admission instead of churning the cache."""
        cache = FrequencyAdmissionCache(LRUCache(8), sample_size=100_000)
        hot = list(range(8))
        for _ in range(50):
            for key in hot:
                cache.access(key)
        for key in range(1000, 1400):
            cache.access(key)  # scan flood, each key seen once
        assert all(key in cache for key in hot)
        assert cache.rejected > 300

    def test_admits_genuinely_popular_newcomer(self):
        cache = FrequencyAdmissionCache(LRUCache(4), sample_size=100_000)
        for _ in range(20):
            for key in range(4):
                cache.access(key)
        # A newcomer seen many times eventually out-frequencies a victim.
        for _ in range(200):
            cache.access(99)
        assert 99 in cache

    def test_fills_empty_capacity_without_filtering(self):
        cache = FrequencyAdmissionCache(LRUCache(4))
        for key in range(4):
            cache.access(key)
        assert len(cache) == 4
        assert cache.rejected == 0

    def test_sketch_ages_at_sample_size(self):
        cache = FrequencyAdmissionCache(LRUCache(4), sample_size=50)
        for _ in range(60):
            cache.access(1)
        assert cache.sketch.total < 60  # halved at least once

    def test_hit_rate_beats_plain_lru_under_attack_workload(self):
        """Zipf-with-scan mixture: admission filtering should not lose
        to plain LRU (and typically wins clearly)."""
        rng = np.random.default_rng(3)
        # 80% traffic to 10 hot keys, 20% one-shot scan keys.
        trace = []
        scan_key = 10_000
        for _ in range(6000):
            if rng.random() < 0.8:
                trace.append(int(rng.integers(0, 10)))
            else:
                scan_key += 1
                trace.append(scan_key)
        plain = LRUCache(12)
        filtered = FrequencyAdmissionCache(LRUCache(12))
        for key in trace:
            plain.access(key)
            filtered.access(key)
        assert filtered.stats.hit_rate >= plain.stats.hit_rate

    def test_rejects_bad_sample_size(self):
        with pytest.raises(CacheError):
            FrequencyAdmissionCache(LRUCache(4), sample_size=0)

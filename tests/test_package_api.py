"""Public-API surface tests: exports resolve, docstrings' examples run."""

import doctest
import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.ballsbins",
    "repro.cluster",
    "repro.cache",
    "repro.workload",
    "repro.adversary",
    "repro.sim",
    "repro.analysis",
    "repro.experiments",
]

#: Modules whose docstrings carry runnable examples.
DOCTEST_MODULES = [
    "repro.rng",
    "repro.core.notation",
    "repro.core.provisioning",
    "repro.cluster.cluster",
    "repro.cluster.selection",
    "repro.cache",
    "repro.workload.zipf",
    "repro.workload.trace",
    "repro.workload.costs",
    "repro.analysis.sweep",
]


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__all__, f"{module_name} exports nothing"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_from_readme(self):
        """The README quickstart snippet must keep working verbatim."""
        from repro import SystemParameters, plan_best_attack, recommend

        system = SystemParameters(n=1000, m=100_000, c=200, d=3, rate=1e5)
        plan = plan_best_attack(system, k_prime=0.75)
        assert plan.effective
        report = recommend(system, k_prime=0.75)
        assert report.required_cache == 2511

    def test_exception_hierarchy(self):
        from repro import ReproError
        from repro.exceptions import (
            AnalysisError,
            CacheError,
            ConfigurationError,
            DistributionError,
            PartitionError,
            SimulationError,
        )

        for exc in (
            AnalysisError,
            CacheError,
            ConfigurationError,
            DistributionError,
            PartitionError,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    """Every example embedded in a docstring must execute and pass."""
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
    assert results.attempted > 0, f"no doctests found in {module_name}"

"""Cross-cutting property-based invariants (hypothesis).

The focused suites test behaviours; this file pins down the algebraic
invariants that everything else silently relies on, over randomly
generated inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.detection import profile_counts
from repro.ballsbins.allocation import sample_replica_groups
from repro.cache.sketch import CountMinSketch
from repro.cluster.failures import degrade_groups, expected_unavailable_fraction
from repro.cluster.partitioner import RandomTablePartitioner
from repro.cluster.rebalance import migration_plan
from repro.workload.distributions import GeometricDistribution, UniformDistribution
from repro.workload.mixture import MixtureDistribution
from repro.workload.zipf import ZipfDistribution


class TestSketchInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        n_ops=st.integers(min_value=1, max_value=400),
        universe=st.integers(min_value=1, max_value=100),
        width=st.integers(min_value=16, max_value=256),
        depth=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_never_underestimates_any_sequence(
        self, seed, n_ops, universe, width, depth
    ):
        """For any add() sequence, estimate(k) >= true count of k."""
        sketch = CountMinSketch(width=width, depth=depth)
        rng = np.random.default_rng(seed)
        truth = {}
        for key in rng.integers(0, universe, size=n_ops).tolist():
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_halving_halves_total(self, seed):
        sketch = CountMinSketch()
        rng = np.random.default_rng(seed)
        for key in rng.integers(0, 50, size=100).tolist():
            sketch.add(key)
        before = sketch.total
        sketch.halve()
        assert sketch.total == before // 2


class TestMixtureInvariants:
    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=4
        ),
        m=st.integers(min_value=2, max_value=200),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_mixture_is_valid_distribution(self, weights, m, seed):
        """Any positively weighted mixture of valid components is a
        valid distribution, and samples stay in range."""
        rng = np.random.default_rng(seed)
        components = []
        for weight in weights:
            kind = rng.integers(0, 3)
            if kind == 0:
                dist = UniformDistribution(m)
            elif kind == 1:
                dist = ZipfDistribution(m, s=float(rng.uniform(0, 2)))
            else:
                dist = GeometricDistribution(m, ratio=float(rng.uniform(0.5, 1.0)))
            components.append((weight, dist))
        mix = MixtureDistribution(components)
        probs = mix.probabilities()
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()
        keys = mix.sample(200, rng=seed)
        assert keys.min() >= 0 and keys.max() < m


class TestMigrationInvariants:
    @given(
        n=st.integers(min_value=3, max_value=25),
        d=st.integers(min_value=1, max_value=3),
        seeds=st.tuples(
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=0, max_value=200),
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_moved_counts_bounded(self, n, d, seeds):
        """0 <= replicas_moved <= keys * d and keys_affected <= keys,
        with equality to zero iff the partitioners agree."""
        d = min(d, n)
        m = 150
        before = RandomTablePartitioner(n, d, m=m, seed=seeds[0])
        after = RandomTablePartitioner(n, d, m=m, seed=seeds[1])
        plan = migration_plan(before, after, np.arange(m))
        assert 0 <= plan.replicas_moved <= m * d
        assert 0 <= plan.keys_affected <= m
        if seeds[0] == seeds[1]:
            assert plan.replicas_moved == 0
        assert 0.0 <= plan.moved_fraction <= 1.0


class TestFailureInvariants:
    @given(
        n=st.integers(min_value=3, max_value=30),
        d=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=300),
        n_failed=st.integers(min_value=0, max_value=29),
    )
    @settings(max_examples=30, deadline=None)
    def test_survivor_structure_consistent(self, n, d, seed, n_failed):
        """Survivor slices partition the surviving placements; the
        unavailable set is exactly the keys with empty slices."""
        d = min(d, n)
        n_failed = min(n_failed, n - 1)
        keys = 120
        groups = sample_replica_groups(keys, n, d, rng=seed)
        failed = list(range(n_failed))
        degraded = degrade_groups(groups, failed, n=n)
        total_survivors = 0
        for i in range(keys):
            survivors = degraded.survivors_of(i)
            total_survivors += survivors.size
            assert not set(survivors.tolist()) & set(failed)
            if survivors.size == 0:
                assert i in degraded.unavailable
        assert total_survivors == degraded.flat_nodes.size

    @given(
        n=st.integers(min_value=2, max_value=50),
        d=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_unavailability_monotone_in_failures(self, n, d):
        d = min(d, n)
        values = [expected_unavailable_fraction(n, d, f) for f in range(n + 1)]
        assert values[0] == 0.0
        assert values[-1] == pytest.approx(1.0)
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


class TestDetectionInvariants:
    @given(
        counts=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100)
    )
    @settings(max_examples=50, deadline=None)
    def test_profile_fields_well_formed(self, counts):
        """For any observable count vector: entropy in [0, 1], shares in
        (0, 1], verdict one of the three labels."""
        if sum(counts) == 0:
            return  # rejected elsewhere; nothing to profile
        profile = profile_counts(counts)
        assert 0.0 <= profile.normalized_entropy <= 1.0 + 1e-12
        assert 0.0 < profile.top_key_share <= 1.0
        assert 0.0 < profile.head_share_1pct <= 1.0
        assert profile.verdict in ("uniform-flood", "concentrated", "skewed-benign")

    @given(
        distinct=st.integers(min_value=2, max_value=500),
        per_key=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_exactly_uniform_counts_have_entropy_one(self, distinct, per_key):
        profile = profile_counts([per_key] * distinct)
        assert profile.normalized_entropy == pytest.approx(1.0)
        assert profile.verdict == "uniform-flood"

#!/usr/bin/env python3
"""Regenerate the committed golden fixtures under tests/golden/.

Run from the repository root::

    PYTHONPATH=src python tests/golden/make_golden.py

The fixtures pin *reproduced paper numbers* so refactors cannot shift
them silently (tests/test_golden_regression.py compares at 1e-9):

- ``analytic_bounds.json`` — the Eq. (10) bound curves behind Figures
  3/4/5 (paper-k and calibrated-k variants over the default sweep
  grids) plus the analytic critical cache sizes;
- ``failures_expected.json`` — ``expected_unavailable_fraction`` over
  an (n, d, failed) grid;
- ``fig3_small_sim.json`` — a seeded small-system Figure-3 simulation
  curve (exercises the full sample -> partition -> allocate pipeline);
- ``eventsim_baseline.json`` — one seeded event-driven run with the
  online monitor attached and chaos *off*: the byte-level contract that
  fault injection must not perturb when disabled;
- ``scenarios/expected.json`` — pinned engine stats for every scenario
  spec in ``scenarios/*.yaml`` and the deterministic manifest view for
  every campaign spec there (tests/test_scenario_campaign.py compares
  *exactly*, serial and at workers=4).

Only regenerate when a change is *intended* to move reproduced numbers,
and say so in the commit message.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).parent


def _dump(name: str, payload: dict) -> None:
    path = GOLDEN_DIR / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {path}")


def analytic_bounds() -> dict:
    from repro.core.bounds import (
        DEFAULT_CALIBRATED_K_PRIME,
        normalized_max_load_bound,
    )
    from repro.core.cases import critical_cache_size
    from repro.experiments.fig3 import default_x_grid
    from repro.experiments.fig4 import DEFAULT_N_VALUES
    from repro.experiments.fig5 import default_cache_grid
    from repro.experiments.params import PAPER

    payload: dict = {"k_paper": PAPER.k, "k_prime_calibrated": DEFAULT_CALIBRATED_K_PRIME}
    for name, c in (("fig3a", PAPER.c_small), ("fig3b", PAPER.c_large)):
        params = PAPER.system(c=c)
        xs = [int(x) for x in default_x_grid(c, PAPER.m)]
        payload[name] = {
            "x": xs,
            "bound_paper": [normalized_max_load_bound(params, x, k=PAPER.k) for x in xs],
            "bound_calib": [
                normalized_max_load_bound(params, x, k_prime=DEFAULT_CALIBRATED_K_PRIME)
                for x in xs
            ],
        }
    # Figure 4 rides on the two candidate attacks at every swept n.
    fig4 = {"n": list(DEFAULT_N_VALUES), "bound_x_c_plus_1": [], "bound_x_m": []}
    for n in DEFAULT_N_VALUES:
        params = PAPER.system(c=PAPER.c_fig4, n=int(n))
        fig4["bound_x_c_plus_1"].append(
            normalized_max_load_bound(params, params.c + 1, k=PAPER.k)
        )
        fig4["bound_x_m"].append(normalized_max_load_bound(params, params.m, k=PAPER.k))
    payload["fig4"] = fig4
    cache_grid = [int(c) for c in default_cache_grid(PAPER)]
    payload["fig5"] = {
        "c": cache_grid,
        "critical_paper": critical_cache_size(PAPER.n, PAPER.d, k=PAPER.k),
        "critical_calibrated": critical_cache_size(
            PAPER.n, PAPER.d, k_prime=DEFAULT_CALIBRATED_K_PRIME
        ),
        "bound_x_c_plus_1": [
            normalized_max_load_bound(PAPER.system(c=c), min(c + 1, PAPER.m), k=PAPER.k)
            for c in cache_grid
        ],
    }
    return payload


def failures_expected() -> dict:
    from repro.cluster.failures import expected_unavailable_fraction

    cases = []
    for n in (5, 20, 100, 1000):
        for d in (1, 2, 3, 5):
            if d > n:
                continue
            for failed in sorted({0, 1, d - 1, d, n // 4, n // 2, n}):
                if not 0 <= failed <= n:
                    continue
                cases.append(
                    {
                        "n": n,
                        "d": d,
                        "failed": int(failed),
                        "expected": expected_unavailable_fraction(n, d, int(failed)),
                    }
                )
    return {"cases": cases}


def fig3_small_sim() -> dict:
    from repro.core.notation import SystemParameters
    from repro.sim.analytic import simulate_uniform_attack

    params = SystemParameters(n=50, m=2000, c=25, d=3, rate=10_000.0)
    xs = [26, 50, 100, 400, 2000]
    sim_max, sim_mean = [], []
    for x in xs:
        report = simulate_uniform_attack(params, x, trials=5, seed=20130708)
        sim_max.append(report.worst_case)
        sim_mean.append(report.mean)
    return {
        "params": {"n": 50, "m": 2000, "c": 25, "d": 3, "rate": 10_000.0},
        "trials": 5,
        "seed": 20130708,
        "x": xs,
        "sim_max": sim_max,
        "sim_mean": sim_mean,
    }


def eventsim_baseline() -> dict:
    from repro.core.notation import SystemParameters
    from repro.obs import LoadMonitor, MonitorConfig
    from repro.sim.eventsim import EventDrivenSimulator
    from repro.workload.adversarial import AdversarialDistribution

    params = SystemParameters(n=20, m=500, c=10, d=3, rate=2000.0)
    monitor = LoadMonitor(MonitorConfig.from_params(params, x=11, window=0.05))
    sim = EventDrivenSimulator(
        params, AdversarialDistribution(500, 11), seed=7, monitor=monitor
    )
    result = sim.run(4000, trial=0)

    def finite(value: float) -> object:
        return value if isinstance(value, (int, np.integer)) or math.isfinite(value) else None

    return {
        "seed": 7,
        "n_queries": 4000,
        "result": {
            "duration": result.duration,
            "frontend_hits": result.frontend_hits,
            "backend_queries": result.backend_queries,
            "served": result.served.tolist(),
            "dropped": result.dropped.tolist(),
            "loads": result.arrival_loads.loads.tolist(),
            "normalized_max": result.normalized_max,
            "drop_rate": result.drop_rate,
            "latency_mean": finite(result.latency_mean),
            "latency_p99": finite(result.latency_p99),
            "cache_hit_rate": result.cache_hit_rate,
        },
        # Manifest excluded: it echoes MonitorConfig defaults, which may
        # legitimately grow fields; windows/alerts/summaries are the
        # behavioural contract.
        "windows": monitor.windows,
        "alerts": monitor.alerts,
        "summaries": monitor.summaries,
    }


def scenario_campaigns() -> dict:
    import os

    from repro.scenario import load_spec, run_campaign, run_scenario
    from repro.scenario.manifest import deterministic_view

    # The pinned numbers are the *full-fidelity* runs; never generate
    # them under the CI smoke caps.
    os.environ.pop("REPRO_BENCH_SMOKE", None)

    payload: dict = {"scenarios": {}, "campaigns": {}}
    for path in sorted((GOLDEN_DIR / "scenarios").glob("*.yaml")):
        spec = load_spec(path)
        if hasattr(spec, "expand"):
            result = run_campaign(spec)
            payload["campaigns"][path.name] = deterministic_view(result.manifest)
        else:
            payload["scenarios"][path.name] = run_scenario(spec).stats
    return payload


def main() -> None:
    _dump("analytic_bounds.json", analytic_bounds())
    _dump("failures_expected.json", failures_expected())
    _dump("fig3_small_sim.json", fig3_small_sim())
    _dump("eventsim_baseline.json", eventsim_baseline())
    _dump("scenarios/expected.json", scenario_campaigns())


if __name__ == "__main__":
    main()

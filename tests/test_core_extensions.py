"""Tests for the core extensions: tradeoff planning, heterogeneous
capacities and the capacity-aware selection policy."""

import numpy as np
import pytest

from repro.cluster.selection import LeastLoadedKeyPinning, LeastUtilizedKeyPinning
from repro.core.heterogeneous import audit_capacities, utilization_equalizing_bound
from repro.core.notation import SystemParameters
from repro.core.tradeoff import ResourceCosts, plan_defense
from repro.exceptions import ConfigurationError


class TestPlanDefense:
    def test_frontier_monotone_in_d(self):
        plan = plan_defense(n=1000, m=100_000)
        caches = [option.required_cache for option in plan.options]
        assert caches == sorted(caches, reverse=True)  # 1/log d shrinks c*

    def test_cheap_replication_pushes_d_up(self):
        cheap = plan_defense(
            n=1000, m=10_000, costs=ResourceCosts(cache_entry=1.0, replica_item=1e-6)
        )
        expensive = plan_defense(
            n=1000, m=10_000, costs=ResourceCosts(cache_entry=1.0, replica_item=1.0)
        )
        assert cheap.best.d >= expensive.best.d

    def test_best_is_cheapest(self):
        plan = plan_defense(n=500, m=50_000)
        assert plan.best.total_cost == min(o.total_cost for o in plan.options)

    def test_max_cache_constraint(self):
        unconstrained = plan_defense(n=1000, m=100_000, k_prime=1.0)
        biggest_needed = max(o.required_cache for o in unconstrained.options)
        smallest_needed = min(o.required_cache for o in unconstrained.options)
        constrained = plan_defense(
            n=1000, m=100_000, k_prime=1.0, max_cache=smallest_needed
        )
        assert all(o.required_cache <= smallest_needed for o in constrained.options)
        assert len(constrained.options) < len(unconstrained.options)
        assert biggest_needed > smallest_needed

    def test_cache_never_exceeds_key_space(self):
        plan = plan_defense(n=1000, m=500)  # tiny key space
        assert all(o.required_cache <= 500 for o in plan.options)

    def test_d_above_n_skipped(self):
        plan = plan_defense(n=4, m=100, d_candidates=(2, 3, 4, 5, 6))
        assert all(o.d <= 4 for o in plan.options)

    def test_impossible_constraints_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_defense(n=1000, m=100_000, max_cache=1)

    def test_d_one_candidate_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_defense(n=100, m=1000, d_candidates=(1, 2))

    def test_describe_marks_best(self):
        plan = plan_defense(n=100, m=1000)
        assert "<== cheapest" in plan.describe()


class TestAuditCapacities:
    def _params(self):
        return SystemParameters(n=8, m=1000, c=20, d=3, rate=800.0)

    def test_uniform_strong_nodes_safe(self):
        params = self._params()
        audit = audit_capacities(params, np.full(8, 1e4), k_prime=0.75)
        assert audit.safe
        assert audit.at_risk == ()
        assert "SAFE" in audit.describe()

    def test_single_weak_node_flags_cluster(self):
        params = self._params()
        capacities = np.full(8, 1e4)
        capacities[5] = 1.0
        audit = audit_capacities(params, capacities, k_prime=0.75)
        assert not audit.safe
        assert audit.at_risk == (5,)
        assert audit.weakest_margin < 0
        assert "AT RISK" in audit.describe()

    def test_bound_matches_core(self):
        from repro.core.bounds import expected_max_load_bound
        from repro.core.cases import plan_best_attack

        params = self._params()
        audit = audit_capacities(params, np.full(8, 1e4), k_prime=0.75)
        plan = plan_best_attack(params, k_prime=0.75)
        assert audit.plan_x == plan.x
        assert audit.worst_load_bound == pytest.approx(
            expected_max_load_bound(params, plan.x, k_prime=0.75)
        )

    def test_fully_cached_system_trivially_safe(self):
        params = SystemParameters(n=4, m=10, c=10, d=2, rate=100.0)
        audit = audit_capacities(params, np.full(4, 0.001), k_prime=0.5)
        assert audit.safe
        assert audit.worst_load_bound == 0.0

    def test_capacity_vector_validated(self):
        params = self._params()
        with pytest.raises(ConfigurationError):
            audit_capacities(params, np.full(7, 10.0))
        with pytest.raises(ConfigurationError):
            audit_capacities(params, np.full(8, 0.0))


class TestUtilizationEqualizingBound:
    def test_uniform_capacities_recover_eq8(self):
        from repro.core.bounds import expected_max_load_bound
        from repro.core.cases import plan_best_attack

        params = SystemParameters(n=10, m=1000, c=20, d=3, rate=1000.0)
        bounds = utilization_equalizing_bound(params, np.full(10, 50.0), k_prime=0.75)
        plan = plan_best_attack(params, k_prime=0.75)
        expected = expected_max_load_bound(params, plan.x, k_prime=0.75)
        assert np.allclose(bounds, expected)

    def test_shares_scale_with_capacity(self):
        params = SystemParameters(n=4, m=1000, c=20, d=3, rate=1000.0)
        capacities = np.array([10.0, 10.0, 10.0, 70.0])
        bounds = utilization_equalizing_bound(params, capacities, k_prime=0.75)
        # The big node's bound is larger (it takes a bigger share) but
        # not 7x — the additive slack is shared equally.
        assert bounds[3] > bounds[0]
        assert bounds[3] < 7 * bounds[0]

    def test_small_nodes_safer_than_under_uniform_placement(self):
        """The point of capacity-aware placement: the weak node's bound
        drops below the uniform-placement bound."""
        from repro.core.bounds import expected_max_load_bound
        from repro.core.cases import plan_best_attack

        params = SystemParameters(n=4, m=1000, c=20, d=3, rate=1000.0)
        capacities = np.array([10.0, 100.0, 100.0, 100.0])
        plan = plan_best_attack(params, k_prime=0.75)
        uniform_bound = expected_max_load_bound(params, plan.x, k_prime=0.75)
        hetero = utilization_equalizing_bound(params, capacities, k_prime=0.75)
        assert hetero[0] < uniform_bound


class TestLeastUtilizedSelection:
    def test_uniform_capacities_match_least_loaded(self, rng):
        n, keys = 10, 200
        groups = np.stack([rng.choice(n, size=3, replace=False) for _ in range(keys)])
        rates = rng.random(keys) + 0.1
        ll = LeastLoadedKeyPinning().node_loads(groups, rates, n)
        lu = LeastUtilizedKeyPinning(np.full(n, 7.0)).node_loads(groups, rates, n)
        assert np.allclose(ll, lu)

    def test_load_follows_capacity(self):
        """On a 2-node cluster with every key replicated on both, the
        10x-capacity node should absorb ~10x the load."""
        keys = 2000
        groups = np.tile(np.array([0, 1]), (keys, 1))
        rates = np.ones(keys)
        capacities = np.array([10.0, 1.0])
        loads = LeastUtilizedKeyPinning(capacities).node_loads(groups, rates, 2)
        assert loads[0] / loads[1] == pytest.approx(10.0, rel=0.05)

    def test_conserves_rate(self, rng):
        groups = np.stack([rng.choice(6, size=2, replace=False) for _ in range(100)])
        rates = rng.random(100)
        loads = LeastUtilizedKeyPinning(rng.random(6) + 0.5).node_loads(
            groups, rates, 6
        )
        assert loads.sum() == pytest.approx(rates.sum())

    def test_protects_weak_node(self, rng):
        """The weak node ends up with proportionally less load than
        under capacity-blind least-loaded placement."""
        n, keys = 10, 3000
        groups = np.stack([rng.choice(n, size=3, replace=False) for _ in range(keys)])
        rates = np.ones(keys)
        capacities = np.full(n, 100.0)
        capacities[0] = 10.0
        blind = LeastLoadedKeyPinning().node_loads(groups, rates, n)
        aware = LeastUtilizedKeyPinning(capacities).node_loads(groups, rates, n)
        assert aware[0] < blind[0] * 0.5

    def test_factory_construction(self):
        from repro.cluster.selection import make_selection_policy

        policy = make_selection_policy("least-utilized", capacities=np.ones(4))
        assert policy.name == "least-utilized"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LeastUtilizedKeyPinning(np.array([]))
        with pytest.raises(ConfigurationError):
            LeastUtilizedKeyPinning(np.array([1.0, 0.0]))
        policy = LeastUtilizedKeyPinning(np.ones(3))
        with pytest.raises(ConfigurationError):
            policy.node_loads(np.array([[0, 1]]), np.array([1.0]), 5)

"""Profiler contract: deterministic op-counters, spans, memory, no-op path.

The two load-bearing guarantees from ISSUE 5:

- **determinism** — op-counters recorded through the engines' metrics
  seams are bit-identical for every worker count (trial-order merge);
- **non-interference** — attaching a profiler never changes an engine
  result, and the disabled path stays byte-identical to the committed
  golden fixture.
"""

import json
import math
from pathlib import Path

import numpy as np

from repro.core.notation import SystemParameters
from repro.obs import NULL_REGISTRY, NULL_TRACER, LoadMonitor, MonitorConfig
from repro.perf import NULL_PROFILER, NullProfiler, Profiler, as_profiler
from repro.sim.analytic import simulate_uniform_attack
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution

GOLDEN_DIR = Path(__file__).parent / "golden"

PARAMS = SystemParameters(n=50, m=1000, c=10, d=3, rate=10_000.0)


class TickClock:
    """Deterministic clock: +1.0 per call, starting at 0.0."""

    def __init__(self):
        self.now = -1.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestOpCounters:
    def test_count_and_flat_keys(self):
        p = Profiler(trace_memory=False)
        p.count("requests_total")
        p.count("requests_total", 4)
        p.count("cache_ops_total", 2, kind="get")
        counts = p.op_counts()
        assert counts["requests_total"] == 5
        assert counts["cache_ops_total{kind=get}"] == 2

    def test_metrics_seam_is_the_registry(self):
        p = Profiler(trace_memory=False)
        p.metrics.counter("balls_total").inc(7)
        assert p.op_counts()["balls_total"] == 7


class TestSpans:
    def test_span_arithmetic_with_injected_clock(self):
        p = Profiler(clock=TickClock(), trace_memory=False)
        with p.span("outer"):
            with p.span("inner"):
                pass
        aggregates = p.span_aggregates()
        # Calls: outer-open=0, inner-open=1, inner-close=2, outer-close=3.
        assert aggregates["outer"]["total_seconds"] == 3.0
        assert aggregates["outer/inner"]["total_seconds"] == 1.0
        assert aggregates["outer"]["count"] == 1


class TestMemoryCapture:
    def test_capture_records_peak(self):
        p = Profiler()
        with p.capture():
            _ = np.zeros(200_000)
        assert p.tracemalloc_peak_bytes is not None
        assert p.tracemalloc_peak_bytes >= 200_000 * 8

    def test_capture_keeps_maximum_across_windows(self):
        p = Profiler()
        with p.capture():
            _ = np.zeros(200_000)
        first = p.tracemalloc_peak_bytes
        with p.capture():
            pass
        assert p.tracemalloc_peak_bytes == first

    def test_capture_disabled(self):
        p = Profiler(trace_memory=False)
        with p.capture():
            _ = np.zeros(10_000)
        assert p.tracemalloc_peak_bytes is None

    def test_snapshot_shape(self):
        p = Profiler(trace_memory=False)
        p.count("x")
        with p.span("s"):
            pass
        snap = p.snapshot()
        assert snap["ops"] == {"x": 1}
        assert "s" in snap["spans"]
        assert "tracemalloc_peak_bytes" in snap["memory"]


class TestNullProfiler:
    def test_shared_noop_sinks(self):
        null = NullProfiler()
        assert null.metrics is NULL_REGISTRY
        assert null.tracer is NULL_TRACER
        assert not null.enabled

    def test_snapshot_empty(self):
        assert NULL_PROFILER.snapshot()["ops"] == {}

    def test_null_swallows_everything(self):
        NULL_PROFILER.count("ignored", 5)
        with NULL_PROFILER.span("ignored"):
            pass
        with NULL_PROFILER.capture():
            pass
        assert NULL_PROFILER.snapshot()["ops"] == {}

    def test_as_profiler(self):
        assert as_profiler(None) is NULL_PROFILER
        p = Profiler(trace_memory=False)
        assert as_profiler(p) is p


class TestDeterminismAcrossWorkers:
    """ISSUE 5 acceptance: op-counters bit-identical serial vs workers=4."""

    def _campaign_counts(self, workers: int) -> dict:
        profiler = Profiler(trace_memory=False)
        simulate_uniform_attack(
            PARAMS, 60, trials=8, seed=42, workers=workers,
            metrics=profiler.metrics,
        )
        return profiler.op_counts()

    def test_monte_carlo_counters_identical_serial_vs_parallel(self):
        serial = self._campaign_counts(workers=1)
        parallel = self._campaign_counts(workers=4)
        assert serial, "campaign recorded no op-counters"
        assert serial == parallel

    def test_counters_identical_across_repeat_runs(self):
        assert self._campaign_counts(workers=1) == self._campaign_counts(workers=1)

    def test_eventsim_counters_identical_across_runs(self):
        def run_once() -> dict:
            profiler = Profiler(trace_memory=False)
            sim = EventDrivenSimulator(
                PARAMS, AdversarialDistribution(PARAMS.m, 60), seed=9,
                metrics=profiler.metrics,
            )
            sim.run(2000, trial=0)
            return profiler.op_counts()

        first, second = run_once(), run_once()
        assert first, "eventsim recorded no op-counters"
        assert first == second


class TestNonInterference:
    """Attaching a profiler never changes an engine result."""

    def test_monte_carlo_result_unchanged_by_profiler(self):
        bare = simulate_uniform_attack(PARAMS, 60, trials=6, seed=7)
        profiler = Profiler(trace_memory=False)
        observed = simulate_uniform_attack(
            PARAMS, 60, trials=6, seed=7, metrics=profiler.metrics
        )
        assert (
            observed.normalized_max_per_trial == bare.normalized_max_per_trial
        ).all()

    def test_disabled_path_matches_committed_golden_fixture(self):
        """Replays the golden eventsim run with the *null* profiler
        attached; every pinned field must stay byte-identical."""
        pinned = json.loads(
            (GOLDEN_DIR / "eventsim_baseline.json").read_text(encoding="utf-8")
        )
        params = SystemParameters(n=20, m=500, c=10, d=3, rate=2000.0)
        monitor = LoadMonitor(
            MonitorConfig.from_params(params, x=11, window=0.05)
        )
        null = NullProfiler()
        sim = EventDrivenSimulator(
            params, AdversarialDistribution(500, 11), seed=7, monitor=monitor,
            metrics=null.metrics, tracer=null.tracer,
        )
        result = sim.run(4000, trial=0)

        def finite(value):
            if isinstance(value, (int, np.integer)) or math.isfinite(value):
                return value
            return None

        fresh = json.loads(json.dumps({
            "duration": result.duration,
            "frontend_hits": result.frontend_hits,
            "backend_queries": result.backend_queries,
            "served": result.served.tolist(),
            "dropped": result.dropped.tolist(),
            "loads": result.arrival_loads.loads.tolist(),
            "normalized_max": result.normalized_max,
            "drop_rate": result.drop_rate,
            "latency_mean": finite(result.latency_mean),
            "latency_p99": finite(result.latency_p99),
            "cache_hit_rate": result.cache_hit_rate,
        }, sort_keys=True, allow_nan=False))
        assert fresh == pinned["result"]

"""Contract tests for the online attack monitor (``repro.obs.monitor``).

Three acceptance properties anchor the suite:

1. the monitor's final streaming gain equals the event engine's
   end-of-run ``EventSimResult.normalized_max``;
2. monitor output (windows, alerts, summaries, the event log) is
   bit-identical across worker counts;
3. the ``entropy-flat`` rule separates the Theorem-1 uniform-prefix
   fingerprint from a benign Zipf baseline.

Plus the streaming/batch entropy parity the windows module promises,
and the smaller pieces (P² sketches, event-log roundtrip, bound
computation, the null monitor).
"""

import json
import math

import numpy as np
import pytest

from repro.analysis import detection
from repro.core.bounds import fold_constant_k
from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError
from repro.obs import (
    NULL_MONITOR,
    EventLog,
    LoadMonitor,
    MetricsRegistry,
    MonitorConfig,
    P2Quantile,
    QuantileBank,
    render_html,
    render_text,
)
from repro.obs.monitor import FLATNESS_THRESHOLD
from repro.obs.windows import StreamingEntropy
from repro.sim.batch import run_event_campaign
from repro.sim.eventsim import EventDrivenSimulator
from repro.types import LoadVector
from repro.workload.adversarial import AdversarialDistribution
from repro.workload.distributions import UniformDistribution
from repro.workload.zipf import ZipfDistribution

PARAMS = SystemParameters(n=50, m=5_000, c=20, d=3, rate=1e5)
SEED = 11


def _run_monitored(distribution, x=500, window=0.05, n_queries=15_000, seed=SEED):
    monitor = LoadMonitor(MonitorConfig.from_params(PARAMS, x=x, window=window))
    result = EventDrivenSimulator(
        PARAMS, distribution, seed=seed, monitor=monitor
    ).run(n_queries)
    return monitor, result


class TestStreamingEntropyParity:
    """The O(1) streaming score must equal the batch profile exactly."""

    def _counts_for(self, regime):
        rng = np.random.default_rng(7)
        if regime == "flash-crowd":
            # One overwhelming key plus a thin tail: entropy near 0.
            return np.array([20_000, 12, 9, 5, 3, 1, 1], dtype=np.int64)
        if regime == "zipf":
            return ZipfDistribution(800, s=1.01).sample_counts(30_000, rng=rng)
        if regime == "uniform-prefix":
            # Theorem 1's optimal pattern: flat over x of m keys.
            return AdversarialDistribution(2_000, 400).sample_counts(30_000, rng=rng)
        raise AssertionError(regime)

    @pytest.mark.parametrize("regime", ["flash-crowd", "zipf", "uniform-prefix"])
    def test_streamed_equals_batch(self, regime):
        counts = self._counts_for(regime)
        stream = StreamingEntropy()
        for key, count in enumerate(counts):
            for _ in range(int(count)):
                stream.update(key)
        batch = detection.profile_counts(counts)
        assert stream.total == batch.total_queries
        assert stream.distinct == batch.distinct_keys
        assert stream.normalized_entropy == pytest.approx(
            batch.normalized_entropy, abs=1e-9
        )
        assert stream.top_key_share == pytest.approx(batch.top_key_share, abs=1e-12)

    def test_regimes_order_as_documented(self):
        """flash crowd << zipf << uniform prefix, on either implementation."""
        scores = {}
        for regime in ("flash-crowd", "zipf", "uniform-prefix"):
            scores[regime] = detection.profile_counts(
                self._counts_for(regime)
            ).normalized_entropy
        assert scores["flash-crowd"] < 0.5
        assert scores["flash-crowd"] < scores["zipf"] < scores["uniform-prefix"]
        assert scores["uniform-prefix"] > FLATNESS_THRESHOLD

    def test_threshold_matches_detection_module(self):
        """monitor.py hardcodes the threshold to stay off the scipy import
        path; the two constants must never drift apart."""
        assert FLATNESS_THRESHOLD == detection.FLATNESS_THRESHOLD

    def test_streaming_edge_cases(self):
        stream = StreamingEntropy()
        assert stream.entropy == 0.0
        assert stream.normalized_entropy == 0.0
        assert stream.top_key_share == 0.0
        stream.update(3)
        # One distinct key: defined as 0, matching profile_counts.
        assert stream.normalized_entropy == 0.0
        assert stream.top_key_share == 1.0


class TestFinalGainMatchesEngine:
    """Acceptance: streaming gain == end-of-run normalized max (<1%)."""

    @pytest.mark.parametrize(
        "distribution",
        [
            AdversarialDistribution(PARAMS.m, 500),
            UniformDistribution(PARAMS.m),
            ZipfDistribution(PARAMS.m, s=1.01),
        ],
        ids=["adversarial", "uniform", "zipf"],
    )
    def test_final_gain_tracks_result(self, distribution):
        monitor, result = _run_monitored(distribution)
        assert monitor.final_gain == pytest.approx(result.normalized_max, rel=0.01)
        summary = monitor.summaries[-1]
        assert summary["final_gain"] == pytest.approx(result.normalized_max, rel=0.01)

    def test_running_gain_converges_to_final(self):
        monitor, result = _run_monitored(AdversarialDistribution(PARAMS.m, 500))
        last_window = monitor.windows[-1]
        assert last_window["running_gain"] == pytest.approx(
            result.normalized_max, rel=0.01
        )


class TestWorkerDeterminism:
    """Acceptance: monitor output is bit-identical across worker counts."""

    def _campaign(self, workers):
        monitor = LoadMonitor(
            MonitorConfig.from_params(PARAMS, x=500, window=0.05)
        )
        run_event_campaign(
            PARAMS,
            AdversarialDistribution(PARAMS.m, 500),
            trials=4,
            n_queries=6_000,
            seed=SEED,
            workers=workers,
            monitor=monitor,
        )
        return monitor

    def test_windows_alerts_identical_serial_vs_parallel(self):
        serial = self._campaign(workers=1)
        parallel = self._campaign(workers=4)
        assert serial.windows == parallel.windows
        assert serial.alerts == parallel.alerts
        assert serial.summaries == parallel.summaries
        assert serial.final_gain == parallel.final_gain
        assert serial.max_gain == parallel.max_gain
        assert list(serial.events.records) == list(parallel.events.records)
        # The whole JSONL stream, not just the Python objects.
        serial_lines = [json.dumps(r, sort_keys=True) for r in serial.events.records]
        parallel_lines = [
            json.dumps(r, sort_keys=True) for r in parallel.events.records
        ]
        assert serial_lines == parallel_lines

    def test_trials_arrive_in_order(self):
        monitor = self._campaign(workers=4)
        trials = [s["trial"] for s in monitor.summaries]
        assert trials == sorted(trials)
        assert len(trials) == 4


class TestEntropyAlertSeparatesRegimes:
    """Acceptance: Theorem-1 traffic trips ``entropy-flat``; Zipf does not."""

    def test_uniform_prefix_fires(self):
        monitor, _ = _run_monitored(AdversarialDistribution(PARAMS.m, 500))
        rules = {alert["rule"] for alert in monitor.alerts}
        assert "entropy-flat" in rules
        # Every window of the optimal attack looks flat.
        assert all(
            w["normalized_entropy"] > FLATNESS_THRESHOLD for w in monitor.windows
        )

    def test_zipf_baseline_stays_quiet(self):
        monitor, _ = _run_monitored(ZipfDistribution(PARAMS.m, s=1.01))
        rules = {alert["rule"] for alert in monitor.alerts}
        assert "entropy-flat" not in rules
        assert all(
            w["normalized_entropy"] < FLATNESS_THRESHOLD for w in monitor.windows
        )

    def test_alert_records_carry_context(self):
        monitor, _ = _run_monitored(AdversarialDistribution(PARAMS.m, 500))
        alert = next(a for a in monitor.alerts if a["rule"] == "entropy-flat")
        assert alert["type"] == "alert"
        assert alert["value"] > alert["threshold"] or alert["value"] == pytest.approx(
            alert["threshold"]
        )
        assert alert["trial"] == 0

    def test_alerts_land_in_metrics(self):
        registry = MetricsRegistry()
        monitor = LoadMonitor(
            MonitorConfig.from_params(PARAMS, x=500, window=0.05), metrics=registry
        )
        EventDrivenSimulator(
            PARAMS, AdversarialDistribution(PARAMS.m, 500), seed=SEED, monitor=monitor
        ).run(15_000)
        fired = registry.counter("monitor_alerts_total", rule="entropy-flat").value
        assert fired == sum(
            1 for a in monitor.alerts if a["rule"] == "entropy-flat"
        )
        assert fired > 0


class TestBoundComputation:
    def test_matches_theorem_two_formula(self):
        config = MonitorConfig.from_params(PARAMS, x=500)
        k = fold_constant_k(PARAMS.n, PARAMS.d, config.k_prime)
        expected = 1.0 + (1.0 - PARAMS.c + PARAMS.n * k) / (500 - 1)
        assert config.bound_for(500) == pytest.approx(expected)

    def test_none_when_x_at_or_below_cache(self):
        config = MonitorConfig.from_params(PARAMS, x=None)
        assert config.bound_for(None) is None
        assert config.bound_for(PARAMS.c) is None
        assert config.bound_for(1) is None

    def test_explicit_bound_wins(self):
        config = MonitorConfig(n=100, c=10, d=3, x=50, bound=2.5)
        assert config.bound_for(50) == 2.5
        assert config.bound_for(10_000, n=1, c=0, d=1) == 2.5

    def test_sweep_overrides_take_precedence(self):
        config = MonitorConfig(n=100, c=10, d=3)
        base = config.bound_for(50)
        wider_cache = config.bound_for(50, c=40)
        assert wider_cache < base  # larger c shrinks the numerator

    def test_d1_needs_explicit_k(self):
        assert MonitorConfig(n=100, c=10, d=1).bound_for(50) is None
        assert MonitorConfig(n=100, c=10, d=1, k=1.2).bound_for(50) is not None

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MonitorConfig(window=0.0)
        with pytest.raises(ConfigurationError):
            MonitorConfig(overload_factor=-1.0)
        with pytest.raises(ConfigurationError):
            MonitorConfig(rules=("no-such-rule",))


class TestTrialPath:
    def _vector(self, peak):
        loads = np.full(PARAMS.n, 10.0)
        loads[3] = peak
        return LoadVector(loads=loads, total_rate=PARAMS.rate)

    def test_each_trial_becomes_one_window(self):
        monitor = LoadMonitor(MonitorConfig.from_params(PARAMS))
        for t in range(3):
            monitor.record_trial(t, self._vector(2_500.0), campaign="fig3a", x=500)
        assert len(monitor.windows) == 3
        assert [w["trial"] for w in monitor.windows] == [0, 1, 2]
        assert all(w["clock"] == "trial" for w in monitor.windows)
        assert all(w["campaign"] == "fig3a" for w in monitor.windows)
        vector = self._vector(2_500.0)
        assert monitor.final_gain == pytest.approx(vector.normalized_max)

    def test_node_overload_rule_on_trial_windows(self):
        monitor = LoadMonitor(MonitorConfig.from_params(PARAMS))
        even = PARAMS.rate / PARAMS.n  # 2000 qps
        monitor.record_trial(0, self._vector(peak=even * 1.5))
        monitor.record_trial(1, self._vector(peak=even * 5.0))
        rules = [a["rule"] for a in monitor.alerts]
        assert rules == ["node-overload"]
        assert monitor.alerts[0]["trial"] == 1


class TestEventLogRoundtrip:
    def test_write_then_read_is_identity(self, tmp_path):
        monitor, _ = _run_monitored(AdversarialDistribution(PARAMS.m, 500))
        monitor.emit_manifest(engine="test")
        path = tmp_path / "events.jsonl"
        monitor.events.write(path)
        assert EventLog.read(path).records == list(monitor.events.records)

    def test_records_are_strict_json(self):
        monitor, _ = _run_monitored(UniformDistribution(PARAMS.m))
        for record in monitor.events.records:
            # allow_nan=False raises on NaN/inf; the monitor must have
            # already mapped non-finite values to None.
            json.dumps(record, allow_nan=False)

    def test_manifest_emitted_once(self):
        monitor = LoadMonitor(MonitorConfig())
        first = monitor.emit_manifest(engine="event-driven")
        second = monitor.emit_manifest(engine="event-driven")
        assert first is not None and first["type"] == "manifest"
        assert second is None
        manifests = [r for r in monitor.events.records if r["type"] == "manifest"]
        assert len(manifests) == 1


class TestP2Sketch:
    def test_tracks_known_quantiles(self):
        rng = np.random.default_rng(5)
        values = rng.permutation(np.arange(1.0, 10_001.0))
        sketch = P2Quantile(0.5)
        for v in values:
            sketch.observe(v)
        assert sketch.result() == pytest.approx(5_000.5, rel=0.05)

    def test_bank_reports_exact_extremes(self):
        bank = QuantileBank()
        rng = np.random.default_rng(5)
        for v in rng.normal(10.0, 2.0, size=5_000):
            bank.observe(float(v))
        est = bank.estimates()
        assert est["count"] == 5_000
        assert est["min"] <= est["p50"] <= est["p95"] <= est["p99"] <= est["max"]
        assert est["p50"] == pytest.approx(10.0, abs=0.3)

    def test_small_streams_are_exact(self):
        sketch = P2Quantile(0.5)
        assert math.isnan(sketch.result())
        for v in (3.0, 1.0, 2.0):
            sketch.observe(v)
        assert sketch.result() == 2.0


class TestNullMonitor:
    def test_is_inert(self):
        assert NULL_MONITOR.enabled is False
        NULL_MONITOR.begin_run(0, n=10, rate=1.0)
        NULL_MONITOR.record_request(0.0, 1, 2)
        assert NULL_MONITOR.finalize(1.0) is None
        assert NULL_MONITOR.record_trial(0, None) == {}
        assert NULL_MONITOR.snapshot()["records"] == []
        assert NULL_MONITOR.events.records == []
        assert NULL_MONITOR.windows == []

    def test_attaching_never_changes_a_result(self):
        dist = AdversarialDistribution(PARAMS.m, 500)
        bare = EventDrivenSimulator(PARAMS, dist, seed=SEED).run(6_000)
        nulled = EventDrivenSimulator(
            PARAMS, dist, seed=SEED, monitor=NULL_MONITOR
        ).run(6_000)
        live = EventDrivenSimulator(
            PARAMS,
            dist,
            seed=SEED,
            monitor=LoadMonitor(MonitorConfig(window=0.05)),
        ).run(6_000)
        for other in (nulled, live):
            assert other.normalized_max == bare.normalized_max
            assert (other.served == bare.served).all()
            assert other.cache_hit_rate == bare.cache_hit_rate


class TestDashboards:
    def test_render_text_mentions_the_essentials(self):
        monitor, _ = _run_monitored(AdversarialDistribution(PARAMS.m, 500))
        panel = render_text(monitor)
        assert "gain" in panel
        assert "entropy-flat" in panel

    def test_render_html_is_standalone(self):
        monitor, _ = _run_monitored(AdversarialDistribution(PARAMS.m, 500))
        page = render_html(monitor, title="attack")
        assert page.startswith("<!DOCTYPE html>") or "<html" in page
        assert "svg" in page

    def test_renderers_cope_with_empty_monitor(self):
        monitor = LoadMonitor(MonitorConfig())
        assert render_text(monitor)
        assert render_html(monitor)

"""Tests for repro.adversary.multiclient (botnet coordination)."""

import numpy as np
import pytest

from repro.adversary.multiclient import (
    MirroredBotnet,
    PartitionedBotnet,
    aggregate_rates,
)
from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError
from repro.workload.adversarial import AdversarialDistribution
from repro.workload.distributions import UniformDistribution


@pytest.fixture
def public():
    return SystemParameters(n=50, m=1000, c=20, d=3, rate=5000.0)


class TestAggregateRates:
    def test_sums_weighted_probabilities(self):
        rates = aggregate_rates(
            [UniformDistribution(10), AdversarialDistribution(10, 2)], [10.0, 20.0]
        )
        assert rates.sum() == pytest.approx(30.0)
        assert rates[0] == pytest.approx(1.0 + 10.0)
        assert rates[5] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            aggregate_rates([], [])
        with pytest.raises(ConfigurationError):
            aggregate_rates([UniformDistribution(10)], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            aggregate_rates(
                [UniformDistribution(10), UniformDistribution(11)], [1.0, 1.0]
            )
        with pytest.raises(ConfigurationError):
            aggregate_rates([UniformDistribution(10)], [-1.0])


class TestMirroredBotnet:
    def test_aggregate_equals_single_adversary(self, public):
        """Linearity: k mirrored bots at R/k == one adversary at R."""
        botnet = MirroredBotnet(public, x=100, clients=7)
        aggregate = botnet.aggregate().probabilities()
        single = AdversarialDistribution(public.m, 100).probabilities()
        assert np.allclose(aggregate, single)

    def test_per_client_rate(self, public):
        assert MirroredBotnet(public, x=100, clients=4).per_client_rate() == 1250.0

    def test_same_system_outcome_as_single(self, public):
        """The simulator cannot tell a mirrored botnet from one client."""
        from repro.sim.analytic import simulate_distribution

        botnet = MirroredBotnet(public, x=public.c + 1, clients=5)
        joint = simulate_distribution(public, botnet.aggregate(), trials=10, seed=3)
        single = simulate_distribution(
            public, AdversarialDistribution(public.m, public.c + 1), trials=10, seed=3
        )
        assert joint.worst_case == pytest.approx(single.worst_case)

    def test_validation(self, public):
        with pytest.raises(ConfigurationError):
            MirroredBotnet(public, x=100, clients=0)
        with pytest.raises(ConfigurationError):
            MirroredBotnet(public, x=0, clients=2)


class TestPartitionedBotnet:
    def test_slices_cover_x_disjointly(self, public):
        botnet = PartitionedBotnet(public, x=100, clients=7)
        slices = botnet.slices()
        covered = []
        for start, stop in slices:
            covered.extend(range(start, stop))
        assert covered == list(range(100))

    def test_aggregate_equals_single_adversary_when_balanced(self, public):
        botnet = PartitionedBotnet(public, x=100, clients=4)  # balanced split
        aggregate = botnet.aggregate().probabilities()
        single = AdversarialDistribution(public.m, 100).probabilities()
        assert np.allclose(aggregate, single)

    def test_each_bot_looks_small(self, public):
        """Per-source footprint shrinks 1/k: the rate-limiting evasion."""
        botnet = PartitionedBotnet(public, x=100, clients=10)
        assert botnet.max_keys_per_client() == 10
        assert botnet.per_client_rate() == pytest.approx(public.rate / 10)
        for dist in botnet.client_distributions():
            assert np.count_nonzero(dist.probabilities()) == 10

    def test_unbalanced_split_still_sums_to_one(self, public):
        botnet = PartitionedBotnet(public, x=100, clients=7)
        aggregate = botnet.aggregate().probabilities()
        assert aggregate.sum() == pytest.approx(1.0)
        # Support is exactly the attacked prefix.
        assert np.count_nonzero(aggregate) == 100

    def test_validation(self, public):
        with pytest.raises(ConfigurationError):
            PartitionedBotnet(public, x=5, clients=6)  # more bots than keys
        with pytest.raises(ConfigurationError):
            PartitionedBotnet(public, x=public.m + 1, clients=2)
        with pytest.raises(ConfigurationError):
            PartitionedBotnet(public, x=10, clients=0)

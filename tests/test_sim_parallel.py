"""Tests for repro.sim.parallel and the workers= plumbing.

The headline contract: for any worker count, a campaign with a given
seed produces *bit-identical* per-trial results — parallelism is an
execution detail, never a semantics change.
"""

import numpy as np
import pytest

from repro.core.notation import SystemParameters
from repro.exceptions import SimulationError
from repro.sim.analytic import simulate_uniform_attack
from repro.sim.batch import run_event_campaign
from repro.sim.parallel import ParallelExecutor, resolve_seed, resolve_workers
from repro.sim.runner import run_trials
from repro.types import LoadVector
from repro.workload.distributions import UniformDistribution


def _params():
    return SystemParameters(n=20, m=2000, c=50, d=3, rate=1e4)


def _uniform_vector(gen):
    """Top-level (hence picklable) trial: random loads, fixed config."""
    return LoadVector(loads=gen.random(8) + 0.1, total_rate=100.0)


def _trial_index_vector(gen, trial):
    """Encodes its trial index in the load so ordering is observable."""
    del gen
    loads = np.ones(4)
    loads[0] = 10.0 + trial
    return LoadVector(loads=loads, total_rate=100.0)


def _drifting_vector(gen):
    """Misbehaving trial fn: total_rate varies per trial stream."""
    return LoadVector(loads=np.ones(4), total_rate=100.0 + gen.random())


class TestResolvers:
    def test_resolve_workers_defaults(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3

    def test_resolve_workers_zero_is_cpu_count(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_resolve_workers_rejects_negative(self):
        with pytest.raises(SimulationError):
            resolve_workers(-2)

    def test_resolve_seed_passthrough(self):
        assert resolve_seed(1234) == 1234

    def test_resolve_seed_none_draws_concrete_entropy(self):
        seed = resolve_seed(None)
        assert isinstance(seed, int)
        # The resolved seed must be replayable: same seed -> same report.
        a = run_trials(_uniform_vector, trials=3, seed=seed)
        b = run_trials(_uniform_vector, trials=3, seed=seed)
        assert (a.normalized_max_per_trial == b.normalized_max_per_trial).all()


class TestParallelExecutor:
    def test_results_come_back_in_trial_order(self):
        with ParallelExecutor(workers=2, chunk_size=1) as executor:
            vectors = executor.map_trials(
                _trial_index_vector, trials=6, seed=7, pass_trial=True
            )
        assert [v.loads[0] for v in vectors] == [10.0 + t for t in range(6)]

    def test_parallel_matches_serial_streams(self):
        serial = ParallelExecutor(workers=1).map_trials(
            _uniform_vector, trials=8, seed=11
        )
        with ParallelExecutor(workers=3) as executor:
            parallel = executor.map_trials(_uniform_vector, trials=8, seed=11)
        for a, b in zip(serial, parallel):
            assert (a.loads == b.loads).all()

    def test_lambda_rejected_with_diagnosis(self):
        with ParallelExecutor(workers=2) as executor:
            with pytest.raises(SimulationError, match="picklable"):
                executor.map_trials(lambda gen: None, trials=4, seed=1)

    def test_lambda_fine_when_serial(self):
        vectors = ParallelExecutor(workers=1).map_trials(
            lambda gen: LoadVector(loads=gen.random(3) + 0.1, total_rate=10.0),
            trials=2,
            seed=1,
        )
        assert len(vectors) == 2

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(SimulationError):
            ParallelExecutor(workers=2, chunk_size=0)

    def test_unknown_start_method_rejected(self):
        with pytest.raises(SimulationError):
            ParallelExecutor(workers=2, mp_context="teleport")

    def test_zero_trials_rejected(self):
        with pytest.raises(SimulationError):
            ParallelExecutor().map_trials(_uniform_vector, trials=0, seed=1)


class TestRunTrialsWorkers:
    def test_consistency_check_names_offending_trial(self):
        with pytest.raises(SimulationError, match="trial 1 .*relative to trial 0"):
            run_trials(_drifting_vector, trials=3, seed=1, workers=1)
        # Same contract on the parallel path.
        with pytest.raises(SimulationError, match="relative to trial 0"):
            run_trials(_drifting_vector, trials=3, seed=1, workers=2)

    def test_seed_recorded_in_metadata(self):
        report = run_trials(_uniform_vector, trials=2, seed=99)
        assert report.metadata["seed"] == 99
        report = run_trials(_uniform_vector, trials=2, seed=None)
        assert isinstance(report.metadata["seed"], int)

    def test_reused_executor_overrides_workers(self):
        with ParallelExecutor(workers=2) as executor:
            a = run_trials(_uniform_vector, trials=4, seed=5, executor=executor)
            b = run_trials(_uniform_vector, trials=4, seed=5, workers=1)
        assert (a.normalized_max_per_trial == b.normalized_max_per_trial).all()


class TestEngineDeterminism:
    """workers=1 vs workers=4 bit-identical, for both engines (ISSUE 1)."""

    def test_monte_carlo_engine(self):
        serial = simulate_uniform_attack(_params(), x=500, trials=8, seed=42, workers=1)
        parallel = simulate_uniform_attack(
            _params(), x=500, trials=8, seed=42, workers=4
        )
        assert (
            serial.normalized_max_per_trial == parallel.normalized_max_per_trial
        ).all()

    def test_event_engine(self):
        kwargs = dict(
            params=_params(),
            distribution=UniformDistribution(2000),
            trials=4,
            n_queries=2000,
            seed=42,
        )
        serial = run_event_campaign(workers=1, **kwargs)
        parallel = run_event_campaign(workers=4, **kwargs)
        assert (
            serial.load_report.normalized_max_per_trial
            == parallel.load_report.normalized_max_per_trial
        ).all()
        assert [r.drop_rate for r in serial.results] == [
            r.drop_rate for r in parallel.results
        ]

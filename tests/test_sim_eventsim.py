"""Tests for the request-level event-driven simulator."""

import pytest

from repro.cache.lru import LRUCache
from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution
from repro.workload.distributions import UniformDistribution
from repro.workload.zipf import ZipfDistribution


def _params(**overrides):
    base = dict(n=20, m=500, c=10, d=3, rate=2000.0)
    base.update(overrides)
    return SystemParameters(**base)


class TestConstruction:
    def test_mismatched_distribution_rejected(self):
        with pytest.raises(ConfigurationError):
            EventDrivenSimulator(_params(), UniformDistribution(99))

    def test_unknown_routing_rejected(self):
        with pytest.raises(ConfigurationError):
            EventDrivenSimulator(
                _params(), UniformDistribution(500), routing="psychic"
            )

    def test_zero_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            EventDrivenSimulator(_params(rate=0.0), UniformDistribution(500))

    def test_default_cache_is_perfect_top_c(self):
        sim = EventDrivenSimulator(_params(), ZipfDistribution(500, 1.01), seed=1)
        assert len(sim.cache) == 10
        assert 0 in sim.cache  # rank 0 is the Zipf head

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            EventDrivenSimulator(
                _params(), UniformDistribution(500), engine="warp"
            )

    def test_engine_defaults_to_legacy(self):
        sim = EventDrivenSimulator(_params(), UniformDistribution(500), seed=1)
        assert sim.engine == "legacy"
        assert sim.last_engine is None
        sim.run(500)
        assert sim.last_engine == "legacy"

    def test_mismatched_cluster_rejected(self):
        from repro.cluster.cluster import Cluster

        with pytest.raises(ConfigurationError):
            EventDrivenSimulator(
                _params(), UniformDistribution(500),
                cluster=Cluster(n=5, d=2, m=500, seed=1),
            )


class TestRun:
    def test_accounting_adds_up(self):
        sim = EventDrivenSimulator(_params(), UniformDistribution(500), seed=2)
        result = sim.run(5000)
        assert result.frontend_hits + result.backend_queries == 5000
        assert result.served.sum() + result.dropped.sum() == result.backend_queries
        assert 0.0 <= result.cache_hit_rate <= 1.0

    def test_cache_hit_rate_matches_pattern(self):
        # Perfect cache + uniform over 500 keys with c = 10: hit rate ~ 2%.
        sim = EventDrivenSimulator(_params(), UniformDistribution(500), seed=3)
        result = sim.run(20_000)
        assert result.cache_hit_rate == pytest.approx(10 / 500, abs=0.01)

    def test_adversarial_hot_key_saturates_underprovisioned_node(self):
        """x = c + 1 flood: one uncached key pinned to one node, offered
        ~R/x = 1.8x the even split.  A node with only 1.2x headroom must
        saturate and drop."""
        params = _params()
        sim = EventDrivenSimulator(
            params,
            AdversarialDistribution(500, params.c + 1),
            node_capacity=1.2 * params.even_split,
            seed=4,
        )
        result = sim.run(20_000)
        assert result.normalized_max > 1.0
        assert result.drop_rate > 0.1

    def test_provisioned_cache_keeps_drops_negligible(self):
        """With the cache provisioned per the paper the same adversary's
        best pattern (query everything) causes no saturation."""
        params = _params(c=80)  # c >> n k for this tiny system
        sim = EventDrivenSimulator(params, UniformDistribution(500), seed=5)
        result = sim.run(20_000)
        assert result.normalized_max < 2.0
        assert result.drop_rate < 0.01

    def test_latencies_reported(self):
        sim = EventDrivenSimulator(_params(), UniformDistribution(500), seed=6)
        result = sim.run(3000)
        assert result.latency_p50 <= result.latency_p95 <= result.latency_p99
        assert result.latency_mean > 0

    def test_reproducible_per_trial(self):
        params = _params()
        a = EventDrivenSimulator(params, UniformDistribution(500), seed=7).run(2000)
        b = EventDrivenSimulator(params, UniformDistribution(500), seed=7).run(2000)
        assert a.normalized_max == b.normalized_max
        assert (a.served == b.served).all()

    def test_trials_are_independent(self):
        params = _params()
        sim = EventDrivenSimulator(params, UniformDistribution(500), seed=7)
        a = sim.run(2000, trial=0)
        sim2 = EventDrivenSimulator(params, UniformDistribution(500), seed=7)
        b = sim2.run(2000, trial=1)
        assert a.normalized_max != b.normalized_max

    def test_rejects_empty_run(self):
        sim = EventDrivenSimulator(_params(), UniformDistribution(500), seed=1)
        with pytest.raises(SimulationError):
            sim.run(0)

    @pytest.mark.parametrize("routing", ["pin", "random", "least-outstanding"])
    def test_all_routings_work(self, routing):
        sim = EventDrivenSimulator(
            _params(), UniformDistribution(500), routing=routing, seed=8
        )
        result = sim.run(3000)
        assert result.backend_queries > 0
        assert result.served.sum() > 0

    def test_real_cache_policy_integration(self):
        """LRU front end under an adversarial sweep: the scan defeats
        LRU, so the back end sees nearly everything."""
        params = _params()
        sim = EventDrivenSimulator(
            params,
            AdversarialDistribution(500, 100),
            cache=LRUCache(params.c),
            seed=9,
        )
        result = sim.run(10_000)
        assert result.cache_hit_rate < 0.2  # scan-flooded LRU barely hits

    def test_fast_engine_reproducible(self):
        params = _params()
        a = EventDrivenSimulator(
            params, UniformDistribution(500), seed=7, engine="fast"
        ).run(2000)
        b = EventDrivenSimulator(
            params, UniformDistribution(500), seed=7, engine="fast"
        ).run(2000)
        assert a.normalized_max == b.normalized_max
        assert (a.served == b.served).all()

    def test_fast_engine_accounting_adds_up(self):
        sim = EventDrivenSimulator(
            _params(), UniformDistribution(500), seed=2, engine="fast"
        )
        result = sim.run(5000)
        assert sim.last_engine == "fast"
        assert result.frontend_hits + result.backend_queries == 5000
        assert result.served.sum() + result.dropped.sum() == result.backend_queries

    def test_describe(self):
        sim = EventDrivenSimulator(_params(), UniformDistribution(500), seed=1)
        text = sim.run(1000).describe()
        assert "cache hit rate" in text
        assert "drop rate" in text

"""History store and regression comparator on synthetic manifests."""

import json

import pytest

from repro.exceptions import ReproError
from repro.perf.compare import (
    DEFAULT_NOISE_FLOOR,
    DEFAULT_TOLERANCE,
    compare_history,
    render_verdicts,
)
from repro.perf.history import (
    append_manifests,
    group_by_bench,
    load_history,
    trajectory_record,
    write_trajectories,
)
from repro.perf.schema import PerfSchemaError, RunManifest


def make_manifest(bench="demo", engine=1.0, smoke=True, **overrides):
    base = dict(
        bench=bench,
        smoke=smoke,
        ok=True,
        engine_seconds=engine,
        export_seconds=0.1,
        wall_seconds=engine + 0.1,
        events=1000,
    )
    base.update(overrides)
    return RunManifest(**base)


class TestHistoryStore:
    def test_append_then_load_round_trips(self, tmp_path):
        path = tmp_path / "history.jsonl"
        written = [make_manifest("a"), make_manifest("b", engine=2.0)]
        append_manifests(written, path)
        append_manifests([make_manifest("a", engine=3.0)], path)
        loaded = load_history(path)
        assert [m.bench for m in loaded] == ["a", "b", "a"]
        assert loaded[:2] == written
        assert loaded[2].engine_seconds == 3.0

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_corrupt_json_line_hard_fails_with_line_number(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_manifests([make_manifest()], path)
        with path.open("a") as fh:
            fh.write("{not json\n")
        with pytest.raises(PerfSchemaError, match="history.jsonl:2"):
            load_history(path)

    def test_schema_violation_hard_fails_with_line_number(self, tmp_path):
        path = tmp_path / "history.jsonl"
        record = make_manifest().to_dict()
        del record["timings"]
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(PerfSchemaError, match="history.jsonl:1"):
            load_history(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_manifests([make_manifest()], path)
        with path.open("a") as fh:
            fh.write("\n\n")
        assert len(load_history(path)) == 1

    def test_group_by_bench_preserves_order(self):
        manifests = [
            make_manifest("a", engine=1.0),
            make_manifest("b"),
            make_manifest("a", engine=2.0),
        ]
        groups = group_by_bench(manifests)
        assert [m.engine_seconds for m in groups["a"]] == [1.0, 2.0]

    def test_trajectory_record_carries_throughput(self):
        row = trajectory_record(make_manifest(engine=2.0, events=1000))
        assert row["events_per_second"] == 500.0
        assert row["engine_seconds"] == 2.0

    def test_write_trajectories(self, tmp_path):
        manifests = [
            make_manifest("a", engine=1.0),
            make_manifest("a", engine=2.0),
            make_manifest("b"),
        ]
        written = write_trajectories(manifests, tmp_path)
        assert sorted(p.name for p in written) == [
            "BENCH_a.json", "BENCH_b.json",
        ]
        payload = json.loads((tmp_path / "BENCH_a.json").read_text())
        assert payload["runs"] == 2
        assert payload["latest"]["engine_seconds"] == 2.0
        assert [r["engine_seconds"] for r in payload["trajectory"]] == [1.0, 2.0]


class TestComparator:
    def test_single_run_is_new(self):
        (verdict,) = compare_history([make_manifest()])
        assert verdict.status == "new"
        assert verdict.baseline is None

    def test_steady_series_within_noise(self):
        history = [make_manifest(engine=1.0) for _ in range(4)]
        (verdict,) = compare_history(history)
        assert verdict.status == "within-noise"
        assert verdict.ratio == 1.0

    def test_regression_needs_relative_and_absolute_breach(self):
        history = [make_manifest(engine=1.0) for _ in range(3)]
        history.append(make_manifest(engine=1.5))
        (verdict,) = compare_history(history)
        assert verdict.status == "regression"
        assert verdict.is_regression
        assert verdict.baseline == 1.0
        assert verdict.ratio == 1.5

    def test_relative_breach_below_noise_floor_is_noise(self):
        # 50% slower but only 5 ms absolute: micro-bench jitter.
        history = [make_manifest(engine=0.010) for _ in range(3)]
        history.append(make_manifest(engine=0.015))
        (verdict,) = compare_history(history)
        assert verdict.status == "within-noise"

    def test_absolute_breach_below_tolerance_is_noise(self):
        # 0.6 s slower but only 6% relative: long bench drift.
        history = [make_manifest(engine=10.0) for _ in range(3)]
        history.append(make_manifest(engine=10.6))
        (verdict,) = compare_history(history)
        assert verdict.status == "within-noise"

    def test_improvement(self):
        history = [make_manifest(engine=2.0) for _ in range(3)]
        history.append(make_manifest(engine=1.0))
        (verdict,) = compare_history(history)
        assert verdict.status == "improvement"

    def test_baseline_is_median_of_window(self):
        history = [
            make_manifest(engine=e) for e in (1.0, 100.0, 1.0, 1.0, 1.0, 1.0)
        ]
        history.append(make_manifest(engine=1.5))
        (verdict,) = compare_history(history, k=5)
        # Window is the last 5 preceding runs; the 100 s outlier falls
        # outside median influence.
        assert verdict.baseline == 1.0
        assert verdict.status == "regression"

    def test_smoke_and_full_series_never_mix(self):
        history = [
            make_manifest(engine=1.0, smoke=True),
            make_manifest(engine=50.0, smoke=False),
            make_manifest(engine=1.0, smoke=True),
            make_manifest(engine=50.0, smoke=False),
        ]
        verdicts = compare_history(history)
        assert len(verdicts) == 2
        assert all(v.status == "within-noise" for v in verdicts)

    def test_separate_baseline_file(self):
        baseline = [make_manifest(engine=1.0) for _ in range(3)]
        current = [make_manifest(engine=2.0)]
        (verdict,) = compare_history(current, baseline_manifests=baseline)
        assert verdict.status == "regression"
        assert verdict.baseline_runs == 3

    def test_baseline_file_without_matching_series_is_new(self):
        baseline = [make_manifest("other")]
        (verdict,) = compare_history([make_manifest()], baseline_manifests=baseline)
        assert verdict.status == "new"

    def test_custom_metric(self):
        history = [
            make_manifest(export_seconds=0.1),
            make_manifest(export_seconds=1.0),
        ]
        (verdict,) = compare_history(history, metric="export_seconds")
        assert verdict.status == "regression"
        assert verdict.metric == "export_seconds"

    def test_unknown_metric_rejected(self):
        with pytest.raises(ReproError, match="unknown comparison metric"):
            compare_history([make_manifest()], metric="vibes")

    def test_k_must_be_positive(self):
        with pytest.raises(ReproError, match="k must be"):
            compare_history([make_manifest()], k=0)

    def test_defaults_are_sane(self):
        assert 0 < DEFAULT_TOLERANCE < 1
        assert DEFAULT_NOISE_FLOOR > 0


class TestRenderVerdicts:
    def test_empty_history_message(self):
        assert "history is empty" in render_verdicts([])

    def test_regressions_listed_first_and_counted(self):
        history = [
            make_manifest("fast", engine=1.0),
            make_manifest("slow", engine=1.0),
            make_manifest("fast", engine=1.0),
            make_manifest("slow", engine=9.0),
        ]
        text = render_verdicts(compare_history(history))
        lines = text.splitlines()
        assert lines[0].startswith("slow")
        assert "regression" in lines[0]
        assert lines[-1] == "-- 2 series compared, 1 regression(s)"

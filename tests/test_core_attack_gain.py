"""Tests for repro.core.attack_gain (Definitions 1 and 2)."""

import numpy as np
import pytest

from repro.core.attack_gain import (
    EFFECTIVENESS_THRESHOLD,
    attack_gain,
    classify_attack,
    is_effective,
)
from repro.exceptions import AnalysisError
from repro.types import LoadReport, LoadVector


class TestAttackGain:
    def test_even_split_gives_gain_one(self):
        assert attack_gain(max_load=10.0, rate=100.0, n=10) == pytest.approx(1.0)

    def test_hotspot_gain(self):
        # All 100 qps on one of 10 nodes: gain 10.
        assert attack_gain(100.0, 100.0, 10) == pytest.approx(10.0)

    def test_zero_rate_is_zero_gain(self):
        assert attack_gain(0.0, 0.0, 5) == 0.0

    def test_rejects_bad_n(self):
        with pytest.raises(AnalysisError):
            attack_gain(1.0, 1.0, 0)

    def test_rejects_negative(self):
        with pytest.raises(AnalysisError):
            attack_gain(-1.0, 1.0, 5)


class TestEffectiveness:
    def test_threshold_is_one(self):
        assert EFFECTIVENESS_THRESHOLD == 1.0

    def test_above_threshold_effective(self):
        assert is_effective(1.001)

    def test_at_threshold_not_effective(self):
        # Definition 2: "greater than 1.0"; equal is ineffective.
        assert not is_effective(1.0)

    def test_below_threshold_not_effective(self):
        assert not is_effective(0.5)


class TestClassifyAttack:
    def test_from_load_vector(self):
        vector = LoadVector(loads=np.array([10.0, 30.0, 20.0]), total_rate=60.0)
        verdict = classify_attack(vector)
        assert verdict.gain == pytest.approx(30.0 / 20.0)
        assert verdict.effective
        assert verdict.trials is None

    def test_from_load_report_uses_worst_case(self):
        report = LoadReport(
            normalized_max_per_trial=np.array([0.9, 1.4, 1.1]),
            total_rate=100.0,
            n_nodes=10,
        )
        verdict = classify_attack(report)
        assert verdict.gain == pytest.approx(1.4)
        assert verdict.mean_gain == pytest.approx(np.mean([0.9, 1.4, 1.1]))
        assert verdict.trials == 3
        assert verdict.effective

    def test_saturation_check(self):
        vector = LoadVector(loads=np.array([10.0, 50.0]), total_rate=60.0)
        assert classify_attack(vector, node_capacity=40.0).saturates
        assert not classify_attack(vector, node_capacity=60.0).saturates

    def test_no_capacity_means_unknown_saturation(self):
        vector = LoadVector(loads=np.array([10.0, 50.0]), total_rate=60.0)
        assert classify_attack(vector).saturates is None

    def test_rejects_unknown_type(self):
        with pytest.raises(AnalysisError):
            classify_attack([1, 2, 3])

    def test_describe_mentions_verdict(self):
        vector = LoadVector(loads=np.array([1.0, 1.0]), total_rate=2.0)
        text = classify_attack(vector).describe()
        assert "ineffective" in text

"""Cross-policy cache invariants (every replacement policy must pass)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    ARCCache,
    ClockCache,
    FIFOCache,
    FrequencyAdmissionCache,
    LFUAgingCache,
    LFUCache,
    LRUCache,
    RandomEvictionCache,
    SieveCache,
    SLRUCache,
    TwoQCache,
    make_cache,
)

FACTORIES = {
    "lru": lambda cap: LRUCache(cap),
    "fifo": lambda cap: FIFOCache(cap),
    "random": lambda cap: RandomEvictionCache(cap, rng=7),
    "clock": lambda cap: ClockCache(cap),
    "lfu": lambda cap: LFUCache(cap),
    "lfu-aging": lambda cap: LFUAgingCache(cap, aging_interval=64),
    "2q": lambda cap: TwoQCache(cap),
    "arc": lambda cap: ARCCache(cap),
    "slru": lambda cap: SLRUCache(cap),
    "sieve": lambda cap: SieveCache(cap),
    "tinylfu-lru": lambda cap: FrequencyAdmissionCache(LRUCache(cap)),
}


@pytest.mark.parametrize("name", sorted(FACTORIES), ids=sorted(FACTORIES))
class TestCacheContract:
    def test_never_exceeds_capacity(self, name):
        cache = FACTORIES[name](8)
        rng = np.random.default_rng(1)
        for key in rng.integers(0, 100, size=2000).tolist():
            cache.access(key)
            assert len(cache) <= 8

    def test_hit_iff_resident(self, name):
        cache = FACTORIES[name](8)
        rng = np.random.default_rng(2)
        for key in rng.integers(0, 30, size=1000).tolist():
            resident = key in cache
            assert cache.access(key) == resident

    def test_repeated_single_key_hits_after_first(self, name):
        cache = FACTORIES[name](4)
        assert not cache.access(5)
        for _ in range(10):
            assert cache.access(5)
        assert cache.stats.hits == 10
        assert cache.stats.misses == 1

    def test_working_set_within_capacity_always_hits(self, name):
        cache = FACTORIES[name](10)
        keys = list(range(5))
        for key in keys:
            cache.access(key)
        for _ in range(20):
            for key in keys:
                assert cache.access(key)

    def test_zero_capacity_always_misses(self, name):
        cache = FACTORIES[name](0)
        for key in (1, 1, 2):
            assert not cache.access(key)
        assert len(cache) == 0
        assert cache.stats.hit_rate == 0.0

    def test_keys_are_the_resident_set(self, name):
        cache = FACTORIES[name](6)
        rng = np.random.default_rng(3)
        for key in rng.integers(0, 40, size=500).tolist():
            cache.access(key)
        resident = set(cache.keys())
        assert len(resident) == len(cache)
        for key in resident:
            assert key in cache

    def test_stats_add_up(self, name):
        cache = FACTORIES[name](5)
        rng = np.random.default_rng(4)
        n = 777
        for key in rng.integers(0, 25, size=n).tolist():
            cache.access(key)
        assert cache.stats.hits + cache.stats.misses == n
        assert 0.0 <= cache.stats.hit_rate <= 1.0

    @given(
        capacity=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=500),
        universe=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_property(self, name, capacity, seed, universe):
        """Capacity bound + hit-iff-resident over random access strings."""
        cache = FACTORIES[name](capacity)
        rng = np.random.default_rng(seed)
        for key in rng.integers(0, universe, size=300).tolist():
            was_resident = key in cache
            hit = cache.access(key)
            assert hit == was_resident
            assert len(cache) <= capacity

"""Cross-policy cache invariants (every replacement policy must pass)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    ARCCache,
    ClockCache,
    FIFOCache,
    FrequencyAdmissionCache,
    LFUAgingCache,
    LFUCache,
    LRUCache,
    RandomEvictionCache,
    SieveCache,
    SLRUCache,
    TwoQCache,
)

from repro.cache.perfect import PerfectCache
from repro.obs import MetricsRegistry

FACTORIES = {
    "lru": lambda cap: LRUCache(cap),
    "fifo": lambda cap: FIFOCache(cap),
    "random": lambda cap: RandomEvictionCache(cap, rng=7),
    "clock": lambda cap: ClockCache(cap),
    "lfu": lambda cap: LFUCache(cap),
    "lfu-aging": lambda cap: LFUAgingCache(cap, aging_interval=64),
    "2q": lambda cap: TwoQCache(cap),
    "arc": lambda cap: ARCCache(cap),
    "slru": lambda cap: SLRUCache(cap),
    "sieve": lambda cap: SieveCache(cap),
    "tinylfu-lru": lambda cap: FrequencyAdmissionCache(LRUCache(cap)),
}

#: The replacement policies plus the static perfect cache — everything
#: that must honour the metrics-accounting contract.
METRIC_FACTORIES = dict(FACTORIES, perfect=lambda cap: PerfectCache(cap))


@pytest.mark.parametrize("name", sorted(FACTORIES), ids=sorted(FACTORIES))
class TestCacheContract:
    def test_never_exceeds_capacity(self, name):
        cache = FACTORIES[name](8)
        rng = np.random.default_rng(1)
        for key in rng.integers(0, 100, size=2000).tolist():
            cache.access(key)
            assert len(cache) <= 8

    def test_hit_iff_resident(self, name):
        cache = FACTORIES[name](8)
        rng = np.random.default_rng(2)
        for key in rng.integers(0, 30, size=1000).tolist():
            resident = key in cache
            assert cache.access(key) == resident

    def test_repeated_single_key_hits_after_first(self, name):
        cache = FACTORIES[name](4)
        assert not cache.access(5)
        for _ in range(10):
            assert cache.access(5)
        assert cache.stats.hits == 10
        assert cache.stats.misses == 1

    def test_working_set_within_capacity_always_hits(self, name):
        cache = FACTORIES[name](10)
        keys = list(range(5))
        for key in keys:
            cache.access(key)
        for _ in range(20):
            for key in keys:
                assert cache.access(key)

    def test_zero_capacity_always_misses(self, name):
        cache = FACTORIES[name](0)
        for key in (1, 1, 2):
            assert not cache.access(key)
        assert len(cache) == 0
        assert cache.stats.hit_rate == 0.0

    def test_keys_are_the_resident_set(self, name):
        cache = FACTORIES[name](6)
        rng = np.random.default_rng(3)
        for key in rng.integers(0, 40, size=500).tolist():
            cache.access(key)
        resident = set(cache.keys())
        assert len(resident) == len(cache)
        for key in resident:
            assert key in cache

    def test_stats_add_up(self, name):
        cache = FACTORIES[name](5)
        rng = np.random.default_rng(4)
        n = 777
        for key in rng.integers(0, 25, size=n).tolist():
            cache.access(key)
        assert cache.stats.hits + cache.stats.misses == n
        assert 0.0 <= cache.stats.hit_rate <= 1.0

    @given(
        capacity=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=500),
        universe=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_property(self, name, capacity, seed, universe):
        """Capacity bound + hit-iff-resident over random access strings."""
        cache = FACTORIES[name](capacity)
        rng = np.random.default_rng(seed)
        for key in rng.integers(0, universe, size=300).tolist():
            was_resident = key in cache
            hit = cache.access(key)
            assert hit == was_resident
            assert len(cache) <= capacity


def _counter_values(registry):
    """(name, labels) -> value for every counter in the registry."""
    return {(c.name, c.labels): c.value for c in registry.counters()}


@pytest.mark.parametrize("name", sorted(METRIC_FACTORIES), ids=sorted(METRIC_FACTORIES))
class TestCacheMetricsContract:
    """Hit/miss/insertion/eviction accounting, uniform across policies."""

    def _exercise(self, name, capacity=8, n=1500, universe=60):
        cache = METRIC_FACTORIES[name](capacity)
        rng = np.random.default_rng(11)
        for key in rng.integers(0, universe, size=n).tolist():
            cache.access(key)
        return cache, n

    def test_accounting_identities(self, name):
        cache, n = self._exercise(name)
        stats = cache.stats
        assert stats.hits + stats.misses == n
        assert stats.insertions <= stats.misses
        assert stats.evictions <= stats.insertions
        if name != "perfect":
            # Every replacement policy's residency is exactly the net
            # insertion balance; the perfect cache never inserts.
            assert stats.insertions - stats.evictions == len(cache)
        else:
            assert stats.insertions == stats.evictions == 0

    def test_publish_exports_exact_totals(self, name):
        cache, _ = self._exercise(name)
        registry = MetricsRegistry()
        cache.publish_metrics(registry)
        values = _counter_values(registry)
        policy = cache.policy_name
        label = (("policy", policy),)
        stats = cache.stats
        assert values.get(("cache_hits_total", label), 0) == stats.hits
        assert values.get(("cache_misses_total", label), 0) == stats.misses
        assert values.get(("cache_insertions_total", label), 0) == stats.insertions
        assert values.get(("cache_evictions_total", label), 0) == stats.evictions
        gauges = {(g.name, g.labels): g.value for g in registry.gauges()}
        assert gauges[("cache_size", label)] == len(cache)
        assert gauges[("cache_capacity", label)] == cache.capacity

    def test_double_publish_does_not_double_count(self, name):
        cache, _ = self._exercise(name)
        registry = MetricsRegistry()
        cache.publish_metrics(registry)
        first = _counter_values(registry)
        cache.publish_metrics(registry)  # nothing happened in between
        assert _counter_values(registry) == first

    def test_incremental_publish_emits_deltas(self, name):
        cache, _ = self._exercise(name)
        registry = MetricsRegistry()
        cache.publish_metrics(registry)
        rng = np.random.default_rng(12)
        for key in rng.integers(0, 60, size=500).tolist():
            cache.access(key)
        cache.publish_metrics(registry)
        values = _counter_values(registry)
        label = (("policy", cache.policy_name),)
        assert values.get(("cache_hits_total", label), 0) == cache.stats.hits
        assert values.get(("cache_misses_total", label), 0) == cache.stats.misses

    def test_publish_into_fresh_registry_after_reset(self, name):
        cache, _ = self._exercise(name)
        cache.publish_metrics(MetricsRegistry())
        cache.stats.reset()
        cache.access(0)
        registry = MetricsRegistry()
        # The watermark is ahead of the reset totals; publishing must
        # re-emit from scratch, never raise on a "negative" delta.
        cache.publish_metrics(registry)
        values = _counter_values(registry)
        label = (("policy", cache.policy_name),)
        published = sum(
            values.get((metric, label), 0)
            for metric in ("cache_hits_total", "cache_misses_total")
        )
        assert published == cache.stats.hits + cache.stats.misses == 1

    def test_publish_accepts_none(self, name):
        cache, _ = self._exercise(name)
        cache.publish_metrics(None)  # must be a silent no-op

    def test_policy_label_matches_factory_name(self, name):
        cache, _ = self._exercise(name)
        assert cache.policy_name == name


class TestAdmissionFilterMetrics:
    def test_rejections_counted_under_composed_policy(self):
        cache = FrequencyAdmissionCache(LRUCache(4))
        rng = np.random.default_rng(13)
        for key in rng.integers(0, 50, size=2000).tolist():
            cache.access(key)
        registry = MetricsRegistry()
        cache.publish_metrics(registry)
        values = _counter_values(registry)
        label = (("policy", "tinylfu-lru"),)
        rejected = values.get(("cache_admission_rejected_total", label), 0)
        assert rejected > 0
        assert rejected + cache.stats.insertions == cache.stats.misses
        cache.publish_metrics(registry)
        assert _counter_values(registry) == values  # delta semantics hold

"""Gap-filling tests: configuration objects, routing behaviour, report
formatting and other paths not covered by the focused suites."""

import numpy as np
import pytest

from repro.core.notation import SystemParameters
from repro.exceptions import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.eventsim import EventDrivenSimulator
from repro.workload.adversarial import AdversarialDistribution


class TestSimulationConfig:
    def _config(self, **overrides):
        base = dict(
            params=SystemParameters(n=10, m=100, c=5, d=2, rate=100.0),
            trials=5,
            seed=1,
        )
        base.update(overrides)
        return SimulationConfig(**base)

    def test_defaults(self):
        config = self._config()
        assert config.selection == "least-loaded"
        assert config.exact_rates

    def test_with_params_copies(self):
        config = self._config()
        other = config.with_params(config.params.with_cache(9))
        assert other.params.c == 9
        assert config.params.c == 5
        assert other.trials == config.trials

    def test_with_trials_copies(self):
        config = self._config()
        assert config.with_trials(99).trials == 99
        assert config.trials == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._config(trials=0)
        with pytest.raises(ConfigurationError):
            self._config(queries_per_trial=0)


class TestEventsimRouting:
    def _sim(self, routing, seed=9):
        params = SystemParameters(n=10, m=200, c=0, d=3, rate=3000.0)
        return EventDrivenSimulator(
            params,
            AdversarialDistribution(params.m, 30),
            routing=routing,
            seed=seed,
        )

    def test_pin_routing_is_sticky(self):
        """Under 'pin' routing a key always lands on one node: the
        number of nodes with traffic is at most the number of keys."""
        sim = self._sim("pin")
        result = sim.run(6000)
        # 30 keys onto 10 nodes: every key pinned => per-key counts on a
        # single node each; with random routing each key spreads over 3.
        assert (result.arrival_loads.loads > 0).sum() <= 10

    def test_least_outstanding_balances_better_than_random(self):
        hot_params = SystemParameters(n=6, m=100, c=0, d=3, rate=4000.0)

        def max_gain(routing):
            gains = []
            for trial in range(3):
                sim = EventDrivenSimulator(
                    hot_params,
                    AdversarialDistribution(100, 12),
                    routing=routing,
                    seed=11,
                )
                gains.append(sim.run(8000, trial=trial).normalized_max)
            return float(np.mean(gains))

        assert max_gain("least-outstanding") <= max_gain("random") + 0.05

    def test_cache_stats_accessible_after_run(self):
        sim = self._sim("pin")
        sim.run(2000)
        assert sim.cache.stats.accesses == 2000

    def test_cluster_property(self):
        sim = self._sim("pin")
        assert sim.cluster.n == 10


class TestClusterWithCapacityAwareSelection:
    def test_integration(self):
        from repro.cluster.cluster import Cluster
        from repro.cluster.selection import LeastUtilizedKeyPinning

        capacities = np.array([10.0, 10.0, 10.0, 10.0, 40.0])
        cluster = Cluster(
            n=5, d=2, m=200,
            selection=LeastUtilizedKeyPinning(capacities),
            seed=4,
        )
        keys = np.arange(200)
        rates = np.full(200, 0.5)
        loads = cluster.apply_rates((keys, rates))
        # The 4x node absorbs a clearly larger share.
        assert loads.loads[4] > loads.loads[:4].mean() * 1.5


class TestMainModule:
    def test_python_dash_m_entry(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "provision", "-n", "100",
             "-m", "1000", "-d", "3", "-c", "50", "--k", "1.2"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "required cache size" in proc.stdout

    def test_console_help(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--help"])
        assert exc.value.code == 0


class TestReportFormattingEdges:
    def test_precision_control(self):
        from repro.experiments.report import render_table

        text = render_table({"v": [3.14159265]}, precision=2)
        assert "3.1" in text and "3.14159" not in text

    def test_empty_rows_table(self):
        from repro.experiments.report import render_table

        text = render_table({"a": [], "b": []})
        assert "a" in text and "b" in text

    def test_title_rendering(self):
        from repro.experiments.report import render_table

        assert render_table({"a": [1]}, title="T").startswith("T\n")

    def test_bool_column(self):
        from repro.experiments.report import render_table

        text = render_table({"flag": [True, False]})
        assert "True" in text and "False" in text


class TestLoadVectorReportConsistency:
    def test_worst_case_at_least_mean(self):
        from repro.sim.analytic import simulate_uniform_attack

        params = SystemParameters(n=20, m=500, c=10, d=2, rate=1000.0)
        report = simulate_uniform_attack(params, 100, trials=10, seed=1)
        assert report.worst_case >= report.mean
        assert report.trials == 10

    def test_selection_policy_recorded_in_metadata(self):
        from repro.sim.analytic import simulate_uniform_attack

        params = SystemParameters(n=20, m=500, c=10, d=2, rate=1000.0)
        report = simulate_uniform_attack(
            params, 100, trials=3, seed=1, selection="round-robin"
        )
        assert report.metadata["selection"] == "round-robin"

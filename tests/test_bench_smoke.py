"""Smoke-run every perf/ablation benchmark inside the tier-1 budget.

``REPRO_BENCH_SMOKE=1`` shrinks each bench to a seconds-scale
configuration and redirects its JSON to ``*_smoke.json``, so these tests
never clobber committed full-scale artifacts.  The point here is not
performance numbers — it is that every bench runs end to end as a
script, exits zero, and that its hard invariants (determinism,
engine agreement, observability non-interference) hold on whatever
machine executes the suite.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"
RESULTS = BENCH_DIR / "results"

BENCHES = ["bench_parallel", "bench_eventsim", "bench_obs"]


def _run_smoke(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(BENCH_DIR / f"{script}.py")],
        cwd=str(BENCH_DIR),
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.fixture(scope="module", params=BENCHES)
def smoke_payload(request):
    """Run one bench in smoke mode (once per module) and load its JSON."""
    script = request.param
    proc = _run_smoke(script)
    assert proc.returncode == 0, f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    name = script[len("bench_"):]
    payload = json.loads(
        (RESULTS / f"{name}_smoke.json").read_text(encoding="utf-8")
    )
    assert payload["smoke"] is True
    return script, payload


def test_bench_exits_zero_and_marks_smoke(smoke_payload):
    script, payload = smoke_payload
    assert payload["smoke"] is True


def test_bench_invariants_hold(smoke_payload):
    script, payload = smoke_payload
    if script == "bench_parallel":
        # Determinism must hold on any host, regardless of core count.
        assert all(
            row["identical_to_serial"] for row in payload["campaign"]["results"]
        )
        assert payload["kernel"]["identical_occupancy"] is True
        for row in payload["campaign"]["results"]:
            assert row["wall_seconds"] > 0
            assert row["trials_per_second"] > 0
        assert payload["kernel"]["sequential_seconds"] > 0
        assert payload["kernel"]["batched_seconds"] > 0
    elif script == "bench_eventsim":
        assert payload["engines_agree"] is True
        assert payload["wall_seconds"] > 0
        assert len(payload["columns"]["x"]) == len(payload["columns"]["drop_rate"])
    elif script == "bench_obs":
        for section in ("monte_carlo", "eventsim", "monitor"):
            modes = payload[section]["modes"]
            expected = {"off", "null", "live" if section == "monitor" else "full"}
            assert set(modes) == expected
            # Instrumentation must never change a simulation result.
            assert all(row["identical_to_off"] for row in modes.values())
            assert all(row["wall_seconds"] > 0 for row in modes.values())
    else:  # pragma: no cover - parametrization is exhaustive
        raise AssertionError(script)

"""Smoke-run the parallel benchmark inside the tier-1 budget.

``REPRO_BENCH_SMOKE=1`` shrinks the bench to a seconds-scale
configuration and redirects its JSON to ``parallel_smoke.json``, so this
test never clobbers the committed full-scale artifact.  The point here
is not performance numbers — it is that the bench runs end to end and
that determinism (parallel == serial, batched == sequential) holds on
whatever machine executes the suite.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH = REPO / "benchmarks" / "bench_parallel.py"
SMOKE_JSON = REPO / "benchmarks" / "results" / "parallel_smoke.json"


def test_bench_parallel_smoke():
    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, str(BENCH)],
        cwd=str(BENCH.parent),
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"bench failed:\n{proc.stdout}\n{proc.stderr}"

    payload = json.loads(SMOKE_JSON.read_text(encoding="utf-8"))
    assert payload["smoke"] is True
    # Determinism must hold on any host, regardless of core count.
    assert all(
        row["identical_to_serial"] for row in payload["campaign"]["results"]
    )
    assert payload["kernel"]["identical_occupancy"] is True
    # Sanity on the recorded shape: wall times and throughputs present.
    for row in payload["campaign"]["results"]:
        assert row["wall_seconds"] > 0
        assert row["trials_per_second"] > 0
    assert payload["kernel"]["sequential_seconds"] > 0
    assert payload["kernel"]["batched_seconds"] > 0

"""Policy-specific behaviour tests for the cache implementations."""

import numpy as np
import pytest

from repro.cache import (
    ARCCache,
    ClockCache,
    FIFOCache,
    LFUAgingCache,
    LFUCache,
    LRUCache,
    PerfectCache,
    RandomEvictionCache,
    TwoQCache,
    make_cache,
)
from repro.exceptions import CacheError, ConfigurationError


class TestPerfectCache:
    def test_pins_prefix_by_default(self):
        cache = PerfectCache(3)
        assert cache.access(0) and cache.access(2)
        assert not cache.access(3)
        assert len(cache) == 3

    def test_misses_never_change_residency(self):
        cache = PerfectCache(2)
        for _ in range(100):
            cache.access(99)
        assert 99 not in cache
        assert cache.stats.misses == 100

    def test_from_distribution_picks_true_top(self):
        probs = np.array([0.1, 0.5, 0.1, 0.3])
        cache = PerfectCache.from_distribution(probs, 2)
        assert cache.pinned == {1, 3}

    def test_from_distribution_tie_break_stable(self):
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        cache = PerfectCache.from_distribution(probs, 2)
        assert cache.pinned == {0, 1}

    def test_from_distribution_capacity_exceeds_keys(self):
        cache = PerfectCache.from_distribution(np.array([0.6, 0.4]), 10)
        assert cache.pinned == {0, 1}

    def test_rejects_duplicate_pins(self):
        with pytest.raises(CacheError):
            PerfectCache(3, pinned=[1, 1])

    def test_rejects_overfull_pins(self):
        with pytest.raises(CacheError):
            PerfectCache(1, pinned=[1, 2])


class TestLRU:
    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 1 is now most recent
        cache.access(3)  # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_scan_flushes_everything(self):
        cache = LRUCache(4)
        for key in range(4):
            cache.access(key)
        for key in range(100, 108):
            cache.access(key)
        assert all(key not in cache for key in range(4))


class TestFIFO:
    def test_hits_do_not_protect(self):
        cache = FIFOCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # hit, but FIFO order unchanged
        cache.access(3)  # evicts 1 (oldest insertion)
        assert 1 not in cache and 2 in cache and 3 in cache


class TestClock:
    def test_second_chance(self):
        cache = ClockCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # sets 1's reference bit
        cache.access(3)  # hand clears 1's bit, evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache


class TestLFU:
    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        for _ in range(3):
            cache.access(1)
        cache.access(2)
        cache.access(3)  # evicts 2 (freq 1) not 1 (freq 3)
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_frequency_counter(self):
        cache = LFUCache(4)
        for _ in range(5):
            cache.access(7)
        assert cache.frequency(7) == 5
        assert cache.frequency(8) == 0

    def test_lru_tie_break(self):
        cache = LFUCache(2)
        cache.access(1)
        cache.access(2)  # both freq 1; 1 is older
        cache.access(3)  # evicts 1
        assert 1 not in cache and 2 in cache


class TestLFUAging:
    def test_aging_halves_counters(self):
        cache = LFUAgingCache(4, aging_interval=10)
        for _ in range(9):
            cache.access(1)  # freq 9, 9 accesses so far
        cache.access(2)  # 10th access triggers aging
        assert cache.frequency(1) == 4  # floor(9 / 2)
        assert cache.frequency(2) == 1  # max(1, 1 // 2)

    def test_recovers_from_stale_head(self):
        """After popularity drift, aging lets new keys displace old
        heavy hitters much sooner than pure LFU."""
        plain = LFUCache(4)
        aging = LFUAgingCache(4, aging_interval=50)
        for cache in (plain, aging):
            for _ in range(100):
                for key in range(4):
                    cache.access(key)  # old regime: keys 0-3 very hot
            for _ in range(60):
                for key in range(10, 14):
                    cache.access(key)  # new regime
        assert sum(key in aging for key in range(10, 14)) >= sum(
            key in plain for key in range(10, 14)
        )

    def test_rejects_bad_interval(self):
        with pytest.raises(CacheError):
            LFUAgingCache(4, aging_interval=0)


class TestTwoQ:
    def test_one_shot_scan_cannot_enter_protected(self):
        cache = TwoQCache(8)
        for key in range(100, 200):
            cache.access(key)
        assert cache.protected_size == 0  # scans stay in probation

    def test_rereference_after_ghost_promotes(self):
        cache = TwoQCache(8)
        cache.access(1)
        for key in range(100, 110):
            cache.access(key)  # pushes 1 through A1in into the ghost list
        assert 1 not in cache
        cache.access(1)  # ghost hit -> protected
        assert 1 in cache
        assert cache.protected_size >= 1

    def test_ghost_list_bounded(self):
        cache = TwoQCache(8)
        for key in range(1000):
            cache.access(key)
        assert cache.ghost_size <= max(1, int(8 * 0.5))

    def test_rejects_bad_fractions(self):
        with pytest.raises(CacheError):
            TwoQCache(8, kin_fraction=0.0)
        with pytest.raises(CacheError):
            TwoQCache(8, kout_fraction=0.0)


class TestARC:
    def test_hit_promotes_to_frequency_list(self):
        cache = ARCCache(4)
        cache.access(1)
        assert cache.recency_size == 1
        cache.access(1)
        assert cache.frequency_size == 1
        assert cache.recency_size == 0

    def test_adaptation_parameter_moves(self):
        cache = ARCCache(4)
        # Build B1 ghosts, then re-reference to push p upward.
        for key in range(20):
            cache.access(key)
        p_before = cache.p
        for key in range(16):  # many are B1 ghosts now
            cache.access(key)
        assert cache.p >= p_before

    def test_scan_resistance_vs_lru(self):
        """A looping hot set + one-shot scans: ARC retains hot keys
        better than LRU."""
        hot = list(range(8))
        rng = np.random.default_rng(5)

        def run(cache):
            hits = 0
            for round_ in range(300):
                for key in hot:
                    hits += cache.access(key)
                cache.access(int(1000 + rng.integers(0, 5000)))  # scan noise
            return hits

        assert run(ARCCache(10)) >= run(LRUCache(10))


class TestRandomEviction:
    def test_reproducible_with_seed(self):
        def run(seed):
            cache = RandomEvictionCache(4, rng=seed)
            trace = np.random.default_rng(0).integers(0, 30, size=500)
            return [cache.access(int(k)) for k in trace]

        assert run(9) == run(9)


class TestFactory:
    @pytest.mark.parametrize(
        "name",
        ["perfect", "fifo", "lru", "random", "clock", "lfu", "lfu-aging", "2q", "arc"],
    )
    def test_make_cache(self, name):
        assert make_cache(name, 4).capacity == 4

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_cache("bogus", 4)

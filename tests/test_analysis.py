"""Tests for the repro.analysis subpackage."""

import numpy as np
import pytest

from repro.analysis.critical_point import find_critical_cache_size
from repro.analysis.metrics import (
    gini_coefficient,
    jain_fairness,
    load_percentiles,
    normalized_loads,
)
from repro.analysis.stats import bootstrap_ci, mean_confidence_interval
from repro.analysis.sweep import sweep
from repro.analysis.tightness import bound_tightness
from repro.exceptions import AnalysisError
from repro.types import LoadVector


class TestJainFairness:
    def test_even_is_one(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hotspot_is_one_over_n(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_vacuously_fair(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_accepts_load_vector(self):
        v = LoadVector(loads=np.array([1.0, 1.0]), total_rate=2.0)
        assert jain_fairness(v) == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(AnalysisError):
            jain_fairness([-1.0, 1.0])


class TestGini:
    def test_even_is_zero(self):
        assert gini_coefficient([3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_hotspot_close_to_one(self):
        g = gini_coefficient([100.0] + [0.0] * 99)
        assert g > 0.95

    def test_zero_loads(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_between_zero_and_one(self, rng):
        g = gini_coefficient(rng.random(50))
        assert 0.0 <= g <= 1.0


class TestPercentilesAndNormalized:
    def test_percentiles(self):
        p = load_percentiles(np.linspace(0, 100, 101), percentiles=(50, 100))
        assert p[50.0] == pytest.approx(50.0)
        assert p[100.0] == pytest.approx(100.0)

    def test_normalized_loads(self):
        v = LoadVector(loads=np.array([10.0, 30.0]), total_rate=40.0)
        assert np.allclose(normalized_loads(v), [0.5, 1.5])

    def test_normalized_needs_load_vector(self):
        with pytest.raises(AnalysisError):
            normalized_loads(np.array([1.0]))


class TestMeanCI:
    def test_interval_contains_mean(self):
        mean, lo, hi = mean_confidence_interval(np.array([1.0, 2.0, 3.0, 4.0]))
        assert lo <= mean <= hi
        assert mean == pytest.approx(2.5)

    def test_single_sample_degenerate(self):
        mean, lo, hi = mean_confidence_interval(np.array([7.0]))
        assert mean == lo == hi == 7.0

    def test_wider_at_higher_confidence(self):
        data = np.random.default_rng(1).random(30)
        _, lo95, hi95 = mean_confidence_interval(data, confidence=0.95)
        _, lo99, hi99 = mean_confidence_interval(data, confidence=0.99)
        assert (hi99 - lo99) > (hi95 - lo95)

    def test_rejects_unknown_confidence(self):
        with pytest.raises(AnalysisError):
            mean_confidence_interval(np.array([1.0, 2.0]), confidence=0.5)


class TestBootstrap:
    def test_reproducible(self):
        data = np.random.default_rng(2).random(40)
        a = bootstrap_ci(data, rng=3)
        b = bootstrap_ci(data, rng=3)
        assert a == b

    def test_interval_brackets_point_for_mean(self):
        data = np.random.default_rng(2).random(100)
        point, lo, hi = bootstrap_ci(data, rng=3)
        assert lo <= point <= hi

    def test_max_statistic(self):
        data = np.array([1.0, 5.0, 3.0])
        point, lo, hi = bootstrap_ci(data, statistic=np.max, rng=1)
        assert point == 5.0
        assert hi == 5.0  # resampled max never exceeds the sample max

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bootstrap_ci(np.array([]))
        with pytest.raises(AnalysisError):
            bootstrap_ci(np.array([1.0]), confidence=1.5)
        with pytest.raises(AnalysisError):
            bootstrap_ci(np.array([1.0]), resamples=0)


class TestCriticalPoint:
    def test_bisects_analytic_curve(self):
        # gain(c) = 1500 / c crosses 1.0 at exactly c = 1500.
        result = find_critical_cache_size(lambda c: 1500.0 / c, lo=100, hi=5000)
        assert result.critical_cache == 1501 or result.critical_cache == 1500
        assert result.lo < result.hi

    def test_respects_tolerance(self):
        result = find_critical_cache_size(
            lambda c: 1500.0 / c, lo=100, hi=5000, tolerance=64
        )
        assert result.hi - result.lo <= 64
        assert abs(result.critical_cache - 1500) <= 64

    def test_evaluations_recorded(self):
        result = find_critical_cache_size(lambda c: 1500.0 / c, lo=100, hi=5000)
        assert len(result.evaluations) >= 2
        assert result.evaluations[0][0] == 100

    def test_bad_bracket_rejected(self):
        with pytest.raises(AnalysisError):
            find_critical_cache_size(lambda c: 0.5, lo=10, hi=100)  # lo not > 1
        with pytest.raises(AnalysisError):
            find_critical_cache_size(lambda c: 2.0, lo=10, hi=100)  # hi not <= 1
        with pytest.raises(AnalysisError):
            find_critical_cache_size(lambda c: 1.0 / c, lo=100, hi=100)

    def test_describe(self):
        result = find_critical_cache_size(lambda c: 1500.0 / c, lo=100, hi=5000)
        assert "critical cache size" in result.describe()


class TestTightness:
    def test_valid_bound(self):
        report = bound_tightness([1.0, 2.0], [1.5, 2.1])
        assert report.valid
        assert report.violations == 0
        assert report.mean_slack == pytest.approx(0.3)
        assert report.max_slack == pytest.approx(0.5)

    def test_violations_counted(self):
        report = bound_tightness([1.0, 3.0], [1.5, 2.0])
        assert not report.valid
        assert report.violations == 1
        assert report.max_violation == pytest.approx(1.0)

    def test_relative_slack(self):
        report = bound_tightness([2.0, 2.0], [3.0, 3.0])
        assert report.relative_mean_slack == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            bound_tightness([1.0], [1.0, 2.0])

    def test_describe(self):
        assert "holds" in bound_tightness([1.0], [2.0]).describe()
        assert "VIOLATED" in bound_tightness([3.0], [2.0]).describe()


class TestSweep:
    def test_columns_assembled(self):
        table = sweep([1, 2, 3], lambda v: {"double": 2 * v, "square": v * v})
        assert table["value"] == [1, 2, 3]
        assert table["double"] == [2, 4, 6]
        assert table["square"] == [1, 4, 9]

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            sweep([], lambda v: {"x": 1})

    def test_rejects_column_drift(self):
        def measure(v):
            return {"a": 1} if v == 1 else {"b": 2}

        with pytest.raises(AnalysisError):
            sweep([1, 2], measure)

    def test_rejects_name_collision(self):
        with pytest.raises(AnalysisError):
            sweep([1], lambda v: {"value": 1})

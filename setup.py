"""Legacy installer shim.

``pip install -e .`` needs the ``wheel`` package for PEP 660 editable
installs; fully offline environments without it can use
``python setup.py develop`` instead, which this shim enables.
"""

from setuptools import setup

setup()
